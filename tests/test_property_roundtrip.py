"""Property-based round-trip harness (seeded fuzzing, stdlib-only).

Two generators drive > 200 randomized cases:

* **SZ substrate fuzz** — random dtype (float32/float64), shape (1D–4D),
  data texture, error mode (``abs``/``rel``/``pw_rel``), and bound; every
  case must honour ``|x − x̂| ≤ eb`` with the codec's documented ULP fine
  print, and round-trip dtype/shape exactly.
* **Registry codec fuzz** — random tree-based AMR datasets (1–3 levels,
  random densities, both dtypes) through every codec in the registry,
  asserting the per-value bound, exact mask recovery, and exact metadata
  round-trip through the container serialization.

Each case derives everything from its integer seed, so a failure report
like ``sz-case-looks wrong at seed 17`` is fully reproducible in
isolation with ``pytest -k 'case17'``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.hierarchy import AMRDataset, AMRLevel
from repro.amr.upsample import upsample
from repro.core.blocks import AXIS_PERMS, BlockExtraction, gather_blocks, invert_perm
from repro.core.container import CompressedDataset, resolve_global_eb
from repro.engine.registry import codec_names, get_codec, get_spec
from repro.sz.compressor import SZCompressor
from repro.sz.huffman import HuffmanCodec, canonical_codes, huffman_code_lengths

from tests.helpers import assert_error_bounded, smooth_cube

#: Case counts: 120 SZ cases + 24 AMR scenarios × 4 codecs = 216 total,
#: plus 40 block gather/scatter and 40 Huffman-table bit-identity cases.
N_SZ_CASES = 120
N_AMR_SCENARIOS = 24
N_BLOCK_CASES = 40
N_TABLE_CASES = 40

#: Registry codecs under fuzz (canonical names; tac-hybrid shares tac's
#: format and is exercised separately by the strategy tests).
FUZZ_CODECS = ("tac", "1d", "zmesh", "3d")


# ----------------------------------------------------------------------
# case generators
# ----------------------------------------------------------------------
def _random_array(rng: np.random.Generator) -> np.ndarray:
    """Random dtype/shape/texture array, sized for sub-second codec runs."""
    dtype = np.float32 if rng.random() < 0.5 else np.float64
    ndim = int(rng.integers(1, 5))
    # Keep total size <= ~4096 so 120 cases stay tier-1 fast.
    max_edge = {1: 4096, 2: 64, 3: 16, 4: 8}[ndim]
    shape = tuple(int(rng.integers(1, max_edge + 1)) for _ in range(ndim))
    kind = rng.choice(["smooth", "noise", "constant", "sparse", "bigscale"])
    if kind == "smooth":
        arr = np.cumsum(rng.standard_normal(shape), axis=0)
    elif kind == "noise":
        arr = rng.standard_normal(shape)
    elif kind == "constant":
        arr = np.full(shape, float(rng.normal()))
    elif kind == "sparse":
        arr = rng.standard_normal(shape)
        arr[rng.random(shape) < 0.8] = 0.0
    else:  # bigscale: Nyx-like magnitudes
        arr = (1.0 + np.abs(rng.standard_normal(shape))) * 1e9
    return np.ascontiguousarray(arr.astype(dtype))


def _sz_case(seed: int):
    rng = np.random.default_rng(1000 + seed)
    arr = _random_array(rng)
    mode = str(rng.choice(["abs", "rel", "pw_rel"]))
    if mode == "pw_rel":
        eb = float(10.0 ** rng.uniform(-4, -0.5))  # must stay < 1
    else:
        eb = float(10.0 ** rng.uniform(-6, -1))
        if mode == "abs" and arr.size:
            # Scale the bound to the data so it stays above the dtype's
            # representability floor (see test_abs_bound_near_ulp_floor
            # for the below-floor regime).
            eb *= max(1.0, float(np.max(np.abs(arr))))
    return arr, mode, eb


def _random_tree_masks(
    rng: np.random.Generator, n_levels: int, coarsest_n: int
) -> list[np.ndarray]:
    """Random masks satisfying the tree-AMR tiling invariant.

    Built coarsest-first: every cell a level owns is either stored there
    or refined into its 2×2×2 children on the next finer level, so the
    up-sampled masks tile the domain exactly once.
    """
    masks_coarse_first = []
    owned = np.ones((coarsest_n,) * 3, dtype=bool)
    for depth in range(n_levels):
        is_finest = depth == n_levels - 1
        if is_finest:
            masks_coarse_first.append(owned)
            break
        frac = float(rng.uniform(0.1, 0.9))
        refine = owned & (rng.random(owned.shape) < frac)
        masks_coarse_first.append(owned & ~refine)
        owned = upsample(refine, 2)
    return masks_coarse_first[::-1]  # finest first


def _amr_scenario(seed: int) -> tuple[AMRDataset, str, float, list[float] | None]:
    rng = np.random.default_rng(7000 + seed)
    n_levels = int(rng.integers(1, 4))
    coarsest_n = 4 if n_levels == 3 else int(rng.choice([4, 8]))
    dtype = np.float32 if rng.random() < 0.5 else np.float64
    masks = _random_tree_masks(rng, n_levels, coarsest_n)
    levels = []
    for idx, mask in enumerate(masks):
        n = mask.shape[0]
        cube = smooth_cube(n, seed=seed * 7 + idx, dtype=dtype)
        scale = float(10.0 ** rng.uniform(-1, 3))
        data = np.where(mask, cube * dtype(scale), dtype(0))
        levels.append(AMRLevel(data=data, mask=mask, level=idx))
    ds = AMRDataset(levels=levels, name=f"fuzz{seed}", field="fuzz_field")
    ds.validate()
    mode = str(rng.choice(["abs", "rel"]))
    eb = float(10.0 ** rng.uniform(-5, -2))
    if mode == "abs":
        # Scale the bound to the data magnitude so it stays meaningful.
        span = max(float(np.max(np.abs(lvl.data))) for lvl in levels) or 1.0
        eb *= span
    per_level_scale = None
    if n_levels > 1 and rng.random() < 0.4:
        per_level_scale = [float(s) for s in rng.uniform(0.5, 4.0, n_levels)]
    return ds, mode, eb, per_level_scale


# ----------------------------------------------------------------------
# SZ substrate fuzz
# ----------------------------------------------------------------------
class TestSZRoundTripFuzz:
    @pytest.mark.parametrize("seed", range(N_SZ_CASES), ids=lambda s: f"case{s}")
    def test_roundtrip_bounded(self, seed):
        arr, mode, eb = _sz_case(seed)
        codec = SZCompressor()
        blob = codec.compress(arr, eb, mode=mode)
        out = codec.decompress(blob)

        assert out.shape == arr.shape, "shape must round-trip exactly"
        assert out.dtype == arr.dtype, "storage dtype must round-trip exactly"

        if mode == "abs":
            assert_error_bounded(arr, out, eb)
        elif mode == "rel":
            spread = float(arr.max() - arr.min()) if arr.size else 0.0
            assert_error_bounded(arr, out, eb * spread)
        else:  # pw_rel: per-point relative bound, zeros exact
            a = arr.astype(np.float64)
            b = out.astype(np.float64)
            zeros = a == 0.0
            assert np.all(b[zeros] == 0.0), "exact zeros must survive pw_rel"
            if np.any(~zeros):
                rel = np.abs(b[~zeros] - a[~zeros]) / np.abs(a[~zeros])
                # eb plus the storage dtype's relative rounding step.
                slack = 4.0 * np.finfo(arr.dtype).eps
                assert float(rel.max()) <= eb * (1 + 1e-6) + slack

    def test_abs_bound_near_ulp_floor(self):
        """Bounds at the dtype's ULP scale: error stays within a few ULPs.

        Found by this harness: with float64 values around 5e9 and an
        absolute bound barely above ulp(max|x|) ≈ 9.5e-7, the multi-stage
        interp reconstruction can exceed ``eb + ulp/2`` by one more
        rounding step.  The codec's honest guarantee in this regime is
        ``eb`` plus a small number of ULPs, pinned here so a future codec
        change that widens the gap is caught.
        """
        rng = np.random.default_rng(33)
        arr = (1.0 + np.abs(rng.standard_normal((56, 34)))) * 1e9
        eb = 1.4e-6  # ~1.5 ulp of the max magnitude
        codec = SZCompressor()
        out = codec.decompress(codec.compress(arr, eb, mode="abs"))
        ulp = float(np.spacing(np.max(np.abs(arr))))
        assert float(np.max(np.abs(out - arr))) <= eb + 2.0 * ulp


# ----------------------------------------------------------------------
# vectorized-hot-path bit-identity fuzz (naive pure-Python references)
# ----------------------------------------------------------------------
def _naive_gather_blocks(data, origins, shape, perm_ids=None):
    """Reference gather: one Python loop iteration per sub-block."""
    out = np.empty((origins.shape[0], *shape), dtype=data.dtype)
    for idx in range(origins.shape[0]):
        x, y, z = (int(v) for v in origins[idx])
        perm = AXIS_PERMS[int(perm_ids[idx])] if perm_ids is not None else (0, 1, 2)
        in_shape = tuple(shape[perm.index(axis)] for axis in range(3))
        block = data[x : x + in_shape[0], y : y + in_shape[1], z : z + in_shape[2]]
        if perm != (0, 1, 2):
            block = block.transpose(perm)
        out[idx] = block
    return out


def _naive_scatter(out, stacked, origins, perm_ids, indices):
    """Reference scatter: one Python loop iteration per selected block."""
    for idx in indices:
        idx = int(idx)
        block = stacked[idx]
        perm = AXIS_PERMS[int(perm_ids[idx])]
        if perm != (0, 1, 2):
            block = block.transpose(invert_perm(perm))
        x, y, z = (int(v) for v in origins[idx])
        sx, sy, sz = block.shape
        out[x : x + sx, y : y + sy, z : z + sz] = block


def _block_case(seed: int):
    """Random grid + disjoint same-canonical-shape blocks with random perms."""
    rng = np.random.default_rng(4000 + seed)
    dtype = np.float32 if rng.random() < 0.5 else np.float64
    shape = tuple(
        int(rng.integers(1, 9)) for _ in range(3)
    )  # canonical (not necessarily sorted — perms are arbitrary ids)
    lattice = int(max(shape))
    nb = int(rng.integers(2, 5))
    grid_n = lattice * nb
    data = rng.standard_normal((grid_n, grid_n, grid_n)).astype(dtype)
    # Disjoint origins on the `lattice` grid (blocks fit because every
    # in-grid extent is <= lattice).
    cells = rng.permutation(nb**3)[: int(rng.integers(1, min(nb**3, 12) + 1))]
    bx, rem = np.divmod(cells, nb * nb)
    by, bz = np.divmod(rem, nb)
    origins = (np.stack([bx, by, bz], axis=1) * lattice).astype(np.int32)
    use_perms = rng.random() < 0.6
    perm_ids = (
        rng.integers(0, len(AXIS_PERMS), origins.shape[0]).astype(np.uint8)
        if use_perms
        else None
    )
    return data, origins, shape, perm_ids


class TestBlockGatherScatterBitIdentity:
    @pytest.mark.parametrize("seed", range(N_BLOCK_CASES), ids=lambda s: f"case{s}")
    def test_gather_matches_naive(self, seed):
        data, origins, shape, perm_ids = _block_case(seed)
        fast = gather_blocks(data, origins, shape, perm_ids)
        naive = _naive_gather_blocks(data, origins, shape, perm_ids)
        assert fast.dtype == naive.dtype
        assert np.array_equal(fast, naive), "vectorized gather diverged from reference"

    @pytest.mark.parametrize("seed", range(N_BLOCK_CASES), ids=lambda s: f"case{s}")
    def test_scatter_matches_naive(self, seed):
        data, origins, shape, perm_ids = _block_case(seed)
        if perm_ids is None:
            perm_ids = np.zeros(origins.shape[0], dtype=np.uint8)
        stacked = _naive_gather_blocks(data, origins, shape, perm_ids)
        extraction = BlockExtraction(
            padded_shape=data.shape, orig_shape=data.shape, block_size=1
        )
        extraction.coords[shape] = origins
        extraction.perms[shape] = perm_ids
        rng = np.random.default_rng(9000 + seed)
        if rng.random() < 0.5:
            indices = None
            chosen = range(origins.shape[0])
        else:
            k = int(rng.integers(1, origins.shape[0] + 1))
            indices = rng.permutation(origins.shape[0])[:k]
            chosen = indices
        fast = np.zeros(data.shape, dtype=data.dtype)
        extraction.scatter_group(shape, stacked, fast, indices=indices)
        naive = np.zeros(data.shape, dtype=data.dtype)
        _naive_scatter(naive, stacked, origins, perm_ids, chosen)
        assert np.array_equal(fast, naive), "vectorized scatter diverged from reference"


def _naive_canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Reference canonical assignment: the per-symbol sequential loop."""
    lengths = np.asarray(lengths, dtype=np.int64)
    codes = np.zeros(lengths.size, dtype=np.uint32)
    present = np.flatnonzero(lengths)
    if present.size == 0:
        return codes
    order = present[np.lexsort((present, lengths[present]))]
    code = 0
    prev_len = int(lengths[order[0]])
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


def _naive_decode_table(lengths, codes, max_len):
    """Reference dense decode table: one Python slice-fill per symbol."""
    size = 1 << max_len
    table_sym = np.zeros(size, dtype=np.int32)
    table_len = np.zeros(size, dtype=np.int64)
    for sym in np.flatnonzero(lengths):
        length = int(lengths[sym])
        lo = int(codes[sym]) << (max_len - length)
        hi = lo + (1 << (max_len - length))
        table_sym[lo:hi] = sym
        table_len[lo:hi] = length
    return table_sym, table_len


def _histogram_case(seed: int) -> np.ndarray:
    """Random histogram, biased toward the skewed shapes SZ produces."""
    rng = np.random.default_rng(6000 + seed)
    alphabet = int(rng.integers(1, 600))
    kind = rng.choice(["geometric", "zipf", "uniform", "sparse", "single", "two"])
    if kind == "geometric":
        counts = np.bincount(
            np.clip(rng.geometric(0.2, 4000), 1, alphabet) - 1, minlength=alphabet
        )
    elif kind == "zipf":
        weights = 1.0 / np.arange(1, alphabet + 1) ** 1.3
        counts = np.bincount(
            rng.choice(alphabet, size=3000, p=weights / weights.sum()),
            minlength=alphabet,
        )
    elif kind == "uniform":
        counts = rng.integers(0, 50, alphabet)
    elif kind == "sparse":
        counts = np.where(rng.random(alphabet) < 0.05, rng.integers(1, 1000), 0)
    elif kind == "single":
        counts = np.zeros(alphabet, dtype=np.int64)
        counts[int(rng.integers(0, alphabet))] = 100
    else:  # two symbols, wildly unequal
        counts = np.zeros(alphabet, dtype=np.int64)
        counts[int(rng.integers(0, alphabet))] = 1
        counts[int(rng.integers(0, alphabet))] += 10**6
    return np.asarray(counts, dtype=np.int64)


class TestHuffmanTableBitIdentity:
    @pytest.mark.parametrize("seed", range(N_TABLE_CASES), ids=lambda s: f"case{s}")
    def test_vectorized_table_build_matches_naive(self, seed):
        counts = _histogram_case(seed)
        max_len = int(np.random.default_rng(seed).choice([8, 12, 16]))
        if (1 << max_len) < int(np.count_nonzero(counts)):
            max_len = 16  # the 8-bit cap cannot hold wide uniform alphabets
        lengths = huffman_code_lengths(counts, max_len=max_len)
        fast_codes = canonical_codes(lengths)
        naive_codes = _naive_canonical_codes(lengths)
        assert np.array_equal(fast_codes, naive_codes), "canonical codes diverged"

        codec = HuffmanCodec(lengths, max_len=max_len)
        codec._build_table()
        ref_sym, ref_len = _naive_decode_table(lengths, naive_codes, max_len)
        assert np.array_equal(codec._table_sym, ref_sym), "decode table syms diverged"
        assert np.array_equal(codec._table_len, ref_len), "decode table lens diverged"


# ----------------------------------------------------------------------
# registry codec fuzz
# ----------------------------------------------------------------------
def _amr_cases():
    for seed in range(N_AMR_SCENARIOS):
        for codec_name in FUZZ_CODECS:
            yield pytest.param(seed, codec_name, id=f"case{seed}-{codec_name}")


class TestRegistryCodecFuzz:
    def test_all_fuzz_codecs_are_registered(self):
        names = set(codec_names(include_aliases=True))
        assert set(FUZZ_CODECS) <= names
        # Acceptance: all four paper codecs resolvable via get_codec(name).
        for name in FUZZ_CODECS:
            codec = get_codec(name)
            assert hasattr(codec, "compress") and hasattr(codec, "decompress")

    @pytest.mark.parametrize("seed,codec_name", _amr_cases())
    def test_roundtrip_bounded_and_metadata_exact(self, seed, codec_name):
        ds, mode, eb, per_level_scale = _amr_scenario(seed)
        spec = get_spec(codec_name)
        if not spec.supports_per_level_eb:
            per_level_scale = None
        codec = get_codec(codec_name)

        kwargs = {"per_level_scale": per_level_scale} if per_level_scale else {}
        comp = codec.compress(ds, eb, mode=mode, **kwargs)
        assert comp.method == spec.method_name

        # Exact container/metadata round-trip.
        blob = comp.to_bytes()
        loaded = CompressedDataset.from_bytes(blob)
        assert loaded.method == comp.method
        assert loaded.dataset_name == comp.dataset_name
        assert loaded.meta == comp.meta
        assert loaded.parts == comp.parts
        assert loaded.original_bytes == comp.original_bytes
        assert loaded.n_values == comp.n_values

        # Decompress from the deserialized form (the archival path).
        restored = get_codec(codec_name).decompress(loaded)
        assert restored.n_levels == ds.n_levels
        assert restored.name == ds.name
        assert restored.field == ds.field

        eb_abs = resolve_global_eb(ds, eb, mode)
        scales = per_level_scale or [1.0] * ds.n_levels
        for orig, back in zip(ds.levels, restored.levels):
            assert np.array_equal(orig.mask, back.mask), "masks must be exact"
            assert_error_bounded(
                orig.values(), back.values(), eb_abs * scales[orig.level]
            )
