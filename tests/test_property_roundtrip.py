"""Property-based round-trip harness (seeded fuzzing, stdlib-only).

Two generators drive > 200 randomized cases:

* **SZ substrate fuzz** — random dtype (float32/float64), shape (1D–4D),
  data texture, error mode (``abs``/``rel``/``pw_rel``), and bound; every
  case must honour ``|x − x̂| ≤ eb`` with the codec's documented ULP fine
  print, and round-trip dtype/shape exactly.
* **Registry codec fuzz** — random tree-based AMR datasets (1–3 levels,
  random densities, both dtypes) through every codec in the registry,
  asserting the per-value bound, exact mask recovery, and exact metadata
  round-trip through the container serialization.

Each case derives everything from its integer seed, so a failure report
like ``sz-case-looks wrong at seed 17`` is fully reproducible in
isolation with ``pytest -k 'case17'``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.hierarchy import AMRDataset, AMRLevel
from repro.amr.upsample import upsample
from repro.core.container import CompressedDataset, resolve_global_eb
from repro.engine.registry import codec_names, get_codec, get_spec
from repro.sz.compressor import SZCompressor

from tests.helpers import assert_error_bounded, smooth_cube

#: Case counts: 120 SZ cases + 24 AMR scenarios × 4 codecs = 216 total.
N_SZ_CASES = 120
N_AMR_SCENARIOS = 24

#: Registry codecs under fuzz (canonical names; tac-hybrid shares tac's
#: format and is exercised separately by the strategy tests).
FUZZ_CODECS = ("tac", "1d", "zmesh", "3d")


# ----------------------------------------------------------------------
# case generators
# ----------------------------------------------------------------------
def _random_array(rng: np.random.Generator) -> np.ndarray:
    """Random dtype/shape/texture array, sized for sub-second codec runs."""
    dtype = np.float32 if rng.random() < 0.5 else np.float64
    ndim = int(rng.integers(1, 5))
    # Keep total size <= ~4096 so 120 cases stay tier-1 fast.
    max_edge = {1: 4096, 2: 64, 3: 16, 4: 8}[ndim]
    shape = tuple(int(rng.integers(1, max_edge + 1)) for _ in range(ndim))
    kind = rng.choice(["smooth", "noise", "constant", "sparse", "bigscale"])
    if kind == "smooth":
        arr = np.cumsum(rng.standard_normal(shape), axis=0)
    elif kind == "noise":
        arr = rng.standard_normal(shape)
    elif kind == "constant":
        arr = np.full(shape, float(rng.normal()))
    elif kind == "sparse":
        arr = rng.standard_normal(shape)
        arr[rng.random(shape) < 0.8] = 0.0
    else:  # bigscale: Nyx-like magnitudes
        arr = (1.0 + np.abs(rng.standard_normal(shape))) * 1e9
    return np.ascontiguousarray(arr.astype(dtype))


def _sz_case(seed: int):
    rng = np.random.default_rng(1000 + seed)
    arr = _random_array(rng)
    mode = str(rng.choice(["abs", "rel", "pw_rel"]))
    if mode == "pw_rel":
        eb = float(10.0 ** rng.uniform(-4, -0.5))  # must stay < 1
    else:
        eb = float(10.0 ** rng.uniform(-6, -1))
        if mode == "abs" and arr.size:
            # Scale the bound to the data so it stays above the dtype's
            # representability floor (see test_abs_bound_near_ulp_floor
            # for the below-floor regime).
            eb *= max(1.0, float(np.max(np.abs(arr))))
    return arr, mode, eb


def _random_tree_masks(
    rng: np.random.Generator, n_levels: int, coarsest_n: int
) -> list[np.ndarray]:
    """Random masks satisfying the tree-AMR tiling invariant.

    Built coarsest-first: every cell a level owns is either stored there
    or refined into its 2×2×2 children on the next finer level, so the
    up-sampled masks tile the domain exactly once.
    """
    masks_coarse_first = []
    owned = np.ones((coarsest_n,) * 3, dtype=bool)
    for depth in range(n_levels):
        is_finest = depth == n_levels - 1
        if is_finest:
            masks_coarse_first.append(owned)
            break
        frac = float(rng.uniform(0.1, 0.9))
        refine = owned & (rng.random(owned.shape) < frac)
        masks_coarse_first.append(owned & ~refine)
        owned = upsample(refine, 2)
    return masks_coarse_first[::-1]  # finest first


def _amr_scenario(seed: int) -> tuple[AMRDataset, str, float, list[float] | None]:
    rng = np.random.default_rng(7000 + seed)
    n_levels = int(rng.integers(1, 4))
    coarsest_n = 4 if n_levels == 3 else int(rng.choice([4, 8]))
    dtype = np.float32 if rng.random() < 0.5 else np.float64
    masks = _random_tree_masks(rng, n_levels, coarsest_n)
    levels = []
    for idx, mask in enumerate(masks):
        n = mask.shape[0]
        cube = smooth_cube(n, seed=seed * 7 + idx, dtype=dtype)
        scale = float(10.0 ** rng.uniform(-1, 3))
        data = np.where(mask, cube * dtype(scale), dtype(0))
        levels.append(AMRLevel(data=data, mask=mask, level=idx))
    ds = AMRDataset(levels=levels, name=f"fuzz{seed}", field="fuzz_field")
    ds.validate()
    mode = str(rng.choice(["abs", "rel"]))
    eb = float(10.0 ** rng.uniform(-5, -2))
    if mode == "abs":
        # Scale the bound to the data magnitude so it stays meaningful.
        span = max(float(np.max(np.abs(lvl.data))) for lvl in levels) or 1.0
        eb *= span
    per_level_scale = None
    if n_levels > 1 and rng.random() < 0.4:
        per_level_scale = [float(s) for s in rng.uniform(0.5, 4.0, n_levels)]
    return ds, mode, eb, per_level_scale


# ----------------------------------------------------------------------
# SZ substrate fuzz
# ----------------------------------------------------------------------
class TestSZRoundTripFuzz:
    @pytest.mark.parametrize("seed", range(N_SZ_CASES), ids=lambda s: f"case{s}")
    def test_roundtrip_bounded(self, seed):
        arr, mode, eb = _sz_case(seed)
        codec = SZCompressor()
        blob = codec.compress(arr, eb, mode=mode)
        out = codec.decompress(blob)

        assert out.shape == arr.shape, "shape must round-trip exactly"
        assert out.dtype == arr.dtype, "storage dtype must round-trip exactly"

        if mode == "abs":
            assert_error_bounded(arr, out, eb)
        elif mode == "rel":
            spread = float(arr.max() - arr.min()) if arr.size else 0.0
            assert_error_bounded(arr, out, eb * spread)
        else:  # pw_rel: per-point relative bound, zeros exact
            a = arr.astype(np.float64)
            b = out.astype(np.float64)
            zeros = a == 0.0
            assert np.all(b[zeros] == 0.0), "exact zeros must survive pw_rel"
            if np.any(~zeros):
                rel = np.abs(b[~zeros] - a[~zeros]) / np.abs(a[~zeros])
                # eb plus the storage dtype's relative rounding step.
                slack = 4.0 * np.finfo(arr.dtype).eps
                assert float(rel.max()) <= eb * (1 + 1e-6) + slack

    def test_abs_bound_near_ulp_floor(self):
        """Bounds at the dtype's ULP scale: error stays within a few ULPs.

        Found by this harness: with float64 values around 5e9 and an
        absolute bound barely above ulp(max|x|) ≈ 9.5e-7, the multi-stage
        interp reconstruction can exceed ``eb + ulp/2`` by one more
        rounding step.  The codec's honest guarantee in this regime is
        ``eb`` plus a small number of ULPs, pinned here so a future codec
        change that widens the gap is caught.
        """
        rng = np.random.default_rng(33)
        arr = (1.0 + np.abs(rng.standard_normal((56, 34)))) * 1e9
        eb = 1.4e-6  # ~1.5 ulp of the max magnitude
        codec = SZCompressor()
        out = codec.decompress(codec.compress(arr, eb, mode="abs"))
        ulp = float(np.spacing(np.max(np.abs(arr))))
        assert float(np.max(np.abs(out - arr))) <= eb + 2.0 * ulp


# ----------------------------------------------------------------------
# registry codec fuzz
# ----------------------------------------------------------------------
def _amr_cases():
    for seed in range(N_AMR_SCENARIOS):
        for codec_name in FUZZ_CODECS:
            yield pytest.param(seed, codec_name, id=f"case{seed}-{codec_name}")


class TestRegistryCodecFuzz:
    def test_all_fuzz_codecs_are_registered(self):
        names = set(codec_names(include_aliases=True))
        assert set(FUZZ_CODECS) <= names
        # Acceptance: all four paper codecs resolvable via get_codec(name).
        for name in FUZZ_CODECS:
            codec = get_codec(name)
            assert hasattr(codec, "compress") and hasattr(codec, "decompress")

    @pytest.mark.parametrize("seed,codec_name", _amr_cases())
    def test_roundtrip_bounded_and_metadata_exact(self, seed, codec_name):
        ds, mode, eb, per_level_scale = _amr_scenario(seed)
        spec = get_spec(codec_name)
        if not spec.supports_per_level_eb:
            per_level_scale = None
        codec = get_codec(codec_name)

        kwargs = {"per_level_scale": per_level_scale} if per_level_scale else {}
        comp = codec.compress(ds, eb, mode=mode, **kwargs)
        assert comp.method == spec.method_name

        # Exact container/metadata round-trip.
        blob = comp.to_bytes()
        loaded = CompressedDataset.from_bytes(blob)
        assert loaded.method == comp.method
        assert loaded.dataset_name == comp.dataset_name
        assert loaded.meta == comp.meta
        assert loaded.parts == comp.parts
        assert loaded.original_bytes == comp.original_bytes
        assert loaded.n_values == comp.n_values

        # Decompress from the deserialized form (the archival path).
        restored = get_codec(codec_name).decompress(loaded)
        assert restored.n_levels == ds.n_levels
        assert restored.name == ds.name
        assert restored.field == ds.field

        eb_abs = resolve_global_eb(ds, eb, mode)
        scales = per_level_scale or [1.0] * ds.n_levels
        for orig, back in zip(ds.levels, restored.levels):
            assert np.array_equal(orig.mask, back.mask), "masks must be exact"
            assert_error_bounded(
                orig.values(), back.values(), eb_abs * scales[orig.level]
            )
