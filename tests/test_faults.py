"""The deterministic fault-injection harness (`repro.faults`).

Policy tests drive :class:`FaultPlan` directly — glob targeting, call
counters, seeded probability, the audit log.  Mechanism tests check each
fault kind's observable effect through :class:`FaultInjectingSource`.
Composition tests prove the harness exercises the real robustness
layers: a ``times=1`` transient under ``retrying_opener`` is absorbed by
one retry, and a flipped payload bit in a sharded v4 archive surfaces as
:class:`PartIntegrityError` naming the damaged part.
"""

import pytest

from repro.core.container import PartIntegrityError
from repro.core.tac import TACCompressor
from repro.engine import default_shard_opener
from repro.engine.archive import BatchArchive, LazyBatchArchive
from repro.faults import (
    FAULT_KINDS,
    FaultInjectingSource,
    FaultPlan,
    FaultRule,
    archive_part_spans,
    faulty_opener,
)
from repro.serve import RetryPolicy, retrying_opener
from tests.helpers import two_level_dataset


class MemSource:
    """In-memory byte source that counts the reads reaching it."""

    def __init__(self, blob: bytes, label: str = "mem"):
        self.blob = bytes(blob)
        self.label = label
        self.reads = 0
        self.closed = False

    def read_at(self, offset: int, length: int) -> bytes:
        self.reads += 1
        return self.blob[offset : offset + length]

    def close(self) -> None:
        self.closed = True


# ---------------------------------------------------------------------------
# rule and spec validation
# ---------------------------------------------------------------------------


class TestFaultRule:
    def test_known_kinds_construct(self):
        for kind in FAULT_KINDS:
            assert FaultRule(kind).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("segfault")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p": -0.1},
            {"p": 1.5},
            {"bit": 8},
            {"bit": -1},
            {"times": -1},
            {"after": -2},
            {"delay": -0.5},
        ],
    )
    def test_bad_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultRule("oserror", **kwargs)


class TestFaultPlanParse:
    def test_single_clause_defaults(self):
        plan = FaultPlan.parse("latency")
        assert len(plan.rules) == 1
        assert plan.rules[0] == FaultRule("latency")

    def test_multi_clause_with_typed_options(self):
        plan = FaultPlan.parse(
            "oserror:match=*.rpsh,p=0.25,times=3;bitflip:match=*/L0/b2,offset=7,bit=5",
            seed=42,
        )
        assert plan.seed == 42
        assert plan.rules[0] == FaultRule("oserror", match="*.rpsh", p=0.25, times=3)
        assert plan.rules[1] == FaultRule("bitflip", match="*/L0/b2", offset=7, bit=5)

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="no rules"):
            FaultPlan.parse("  ;  ")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="bad fault option"):
            FaultPlan.parse("oserror:frequency=2")

    def test_option_without_value_rejected(self):
        with pytest.raises(ValueError, match="bad fault option"):
            FaultPlan.parse("oserror:times")

    def test_unknown_kind_in_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("segfault:p=1.0")


# ---------------------------------------------------------------------------
# firing policy
# ---------------------------------------------------------------------------


class TestFaultPlanFire:
    def test_times_limits_firing(self):
        plan = FaultPlan([FaultRule("oserror", times=2)])
        fired = [bool(plan.fire("s", 0, 8)) for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert plan.n_fired == 2

    def test_after_skips_early_matches(self):
        plan = FaultPlan([FaultRule("oserror", after=2, times=1)])
        fired = [bool(plan.fire("s", 0, 8)) for _ in range(4)]
        assert fired == [False, False, True, False]

    def test_zero_probability_never_fires(self):
        plan = FaultPlan([FaultRule("oserror", p=0.0)], seed=1)
        assert not any(plan.fire("s", 0, 8) for _ in range(50))
        assert plan.summary()[0]["matched"] == 50

    def test_seeded_probability_is_replayable(self):
        def pattern(seed):
            plan = FaultPlan([FaultRule("oserror", p=0.3)], seed=seed)
            return [bool(plan.fire("s", 0, 8)) for _ in range(64)]

        first, second = pattern(7), pattern(7)
        assert first == second
        assert any(first) and not all(first)
        assert pattern(8) != first  # a different seed gives a different run

    def test_source_name_glob(self):
        plan = FaultPlan([FaultRule("oserror", match="*.rpsh")])
        assert plan.fire("arch.shard-0000.rpsh", 0, 8)
        assert not plan.fire("arch.rpbt", 0, 8)

    def test_part_targeting_requires_span_intersection(self):
        spans = {"toy/tac/L0/b3": (100, 50)}
        plan = FaultPlan([FaultRule("bitflip", match="*/L0/b3")])
        assert not plan.fire("s", 0, 50, spans)  # read ends before the part
        events = plan.fire("s", 120, 16, spans)  # read inside the part
        assert events and events[0].target == "toy/tac/L0/b3"
        assert events[0].span == (100, 50)
        assert events[0].read == (120, 16)

    def test_events_audit_log_accumulates(self):
        plan = FaultPlan([FaultRule("truncate", times=2)])
        plan.fire("a", 0, 4)
        plan.fire("b", 8, 4)
        kinds = [event.kind for event in plan.fired_events()]
        assert kinds == ["truncate", "truncate"]
        assert plan.fired_events("bitflip") == []
        assert [event.target for event in plan.events] == ["a", "b"]

    def test_summary_counts_matched_and_fired(self):
        plan = FaultPlan([FaultRule("oserror", times=1), FaultRule("latency", match="no-such")])
        for _ in range(3):
            plan.fire("s", 0, 8)
        rows = plan.summary()
        assert rows[0] == {"kind": "oserror", "match": "*", "matched": 3, "fired": 1}
        assert rows[1] == {"kind": "latency", "match": "no-such", "matched": 0, "fired": 0}


# ---------------------------------------------------------------------------
# injection mechanisms
# ---------------------------------------------------------------------------


class TestFaultInjectingSource:
    def test_oserror_raises_before_inner_read(self):
        inner = MemSource(b"payload-bytes")
        src = FaultInjectingSource(inner, FaultPlan([FaultRule("oserror", times=1)]), "s")
        with pytest.raises(OSError, match="injected transient fault"):
            src.read_at(0, 7)
        assert inner.reads == 0  # fault fired before any bytes moved
        assert src.read_at(0, 7) == b"payload"

    def test_latency_sleeps_before_answering(self, monkeypatch):
        slept = []
        monkeypatch.setattr("repro.faults.inject.time.sleep", slept.append)
        inner = MemSource(b"x" * 16)
        plan = FaultPlan([FaultRule("latency", delay=0.25, times=1)])
        src = FaultInjectingSource(inner, plan, "s")
        assert src.read_at(0, 4) == b"xxxx"
        assert slept == [0.25]
        src.read_at(0, 4)
        assert slept == [0.25]  # times=1: only the first read stalls

    def test_truncate_returns_half_the_bytes(self):
        src = FaultInjectingSource(
            MemSource(b"0123456789"), FaultPlan([FaultRule("truncate", times=1)]), "s"
        )
        assert src.read_at(0, 10) == b"01234"
        assert src.read_at(0, 10) == b"0123456789"

    def test_bitflip_at_offset_within_part_span(self):
        blob = bytes(range(64))
        spans = {"e/L0/b0": (16, 8)}
        plan = FaultPlan([FaultRule("bitflip", match="e/L0/b0", offset=3, bit=2)])
        src = FaultInjectingSource(MemSource(blob), plan, "s", spans)
        data = src.read_at(0, 64)
        assert data[19] == blob[19] ^ 0b100  # span offset 16 + rule offset 3
        assert data[:19] == blob[:19] and data[20:] == blob[20:]

    def test_bitflip_default_hits_first_readable_span_byte(self):
        blob = bytes(range(64))
        spans = {"e/L0/b0": (16, 8)}
        plan = FaultPlan([FaultRule("bitflip", match="e/L0/b0")])
        src = FaultInjectingSource(MemSource(blob), plan, "s", spans)
        data = src.read_at(20, 8)  # window starts inside the part
        assert data[0] == blob[20] ^ 1

    def test_bitflip_outside_read_window_is_a_noop(self):
        blob = bytes(range(64))
        spans = {"e/L0/b0": (16, 8)}
        # offset 40 points past the span AND past this read: nothing flips.
        plan = FaultPlan([FaultRule("bitflip", match="e/L0/b0", offset=40)])
        src = FaultInjectingSource(MemSource(blob), plan, "s", spans)
        assert src.read_at(16, 8) == blob[16:24]

    def test_close_propagates(self):
        inner = MemSource(b"")
        FaultInjectingSource(inner, FaultPlan([]), "s").close()
        assert inner.closed

    def test_faulty_opener_shares_one_plan(self):
        plan = FaultPlan([FaultRule("oserror", times=1)])
        opener = faulty_opener(lambda name: MemSource(b"abc", label=name), plan)
        a, b = opener("s0"), opener("s1")
        with pytest.raises(OSError):
            a.read_at(0, 1)
        b.read_at(0, 1)  # the shared times=1 budget is already spent
        assert plan.n_fired == 1


# ---------------------------------------------------------------------------
# composition with the real archive stack
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sharded_archive(tmp_path_factory):
    tac = TACCompressor(brick_size=4)
    comp = tac.compress(two_level_dataset(n=16, seed=3), 1e-3, mode="abs")
    archive = BatchArchive()
    archive.add("toy/tac", comp)
    head = tmp_path_factory.mktemp("faults") / "arch.rpbt"
    archive.save_sharded(head, shard_size=4096)
    return head


class TestArchiveComposition:
    def test_part_spans_qualified_and_complete(self, sharded_archive):
        spans = archive_part_spans(sharded_archive)
        with LazyBatchArchive.open(sharded_archive) as lazy:
            names = {
                f"toy/tac/{part}" for part in lazy.entry("toy/tac").parts
            }
        qualified = {name for table in spans.values() for name in table}
        assert qualified == names

    def test_monolithic_archive_has_no_spans(self, tmp_path):
        tac = TACCompressor(brick_size=4)
        comp = tac.compress(two_level_dataset(n=16, seed=3), 1e-3, mode="abs")
        archive = BatchArchive()
        archive.add("toy/tac", comp)
        mono = tmp_path / "mono.rpbt"
        mono.write_bytes(archive.to_bytes())
        assert archive_part_spans(mono) == {}

    def test_transient_fault_absorbed_by_retry(self, sharded_archive):
        plan = FaultPlan([FaultRule("oserror", match="*.rpsh", times=1)])
        opener = retrying_opener(
            faulty_opener(default_shard_opener(sharded_archive.parent), plan),
            policy=RetryPolicy(sleep=lambda seconds: None),
        )
        with LazyBatchArchive.open(sharded_archive, shard_opener=opener) as lazy:
            entry = lazy.entry("toy/tac")
            for name in sorted(entry.parts):
                entry.parts[name]
        assert plan.n_fired == 1
        assert opener.stats.snapshot()["read_retries"] >= 1

    def test_bitflip_surfaces_as_part_integrity_error(self, sharded_archive):
        spans = archive_part_spans(sharded_archive)
        plan = FaultPlan([FaultRule("bitflip", match="*/L1/b0", offset=1)])
        opener = faulty_opener(
            default_shard_opener(sharded_archive.parent), plan, spans
        )
        with LazyBatchArchive.open(sharded_archive, shard_opener=opener) as lazy:
            entry = lazy.entry("toy/tac")
            assert entry.parts.verifies_integrity  # streamed default is v4
            with pytest.raises(PartIntegrityError, match="CRC-32") as excinfo:
                entry.parts["L1/b0"]
        assert excinfo.value.part == "L1/b0"
        assert excinfo.value.level == 1
        assert plan.n_fired >= 1

    def test_truncated_part_read_fails_loudly(self, sharded_archive):
        # Span-targeted, so the tear hits a payload read (head parsing is
        # untouched) and the short read fails the part's CRC check.
        spans = archive_part_spans(sharded_archive)
        plan = FaultPlan([FaultRule("truncate", match="*/L1/b0", times=1)])
        opener = faulty_opener(
            default_shard_opener(sharded_archive.parent), plan, spans
        )
        with LazyBatchArchive.open(sharded_archive, shard_opener=opener) as lazy:
            entry = lazy.entry("toy/tac")
            with pytest.raises(PartIntegrityError):
                entry.parts["L1/b0"]
            assert entry.parts["L1/b0"]  # times=1: the retry-shape read heals
