"""Golden-format regression: stored archives must stay readable, byte-stable.

``tests/data/golden_batch.rpbt`` (wire version 1) and
``tests/data/golden_batch_v2.rpbt`` (version 2, part/entry-indexed) are
checked-in batch archives holding the fully analytic
:func:`tests.helpers.golden_dataset` compressed by all four registry
codecs (``tests/data/make_golden.py`` regenerates them).  The assertions
pin the container contract future refactors must keep:

* the bytes parse (no silent format break for existing stored archives);
* parse → re-serialize reproduces the identical bytes — for *both*
  versions (a blob remembers the version it was stored in);
* the manifest matches what was recorded at fixture-creation time;
* every entry still decompresses to the recorded values and honours the
  recorded error bound against the analytically regenerated original;
* the lazy readers (:class:`~repro.engine.LazyBatchArchive`,
  :class:`~repro.core.container.LazyCompressedDataset`) see the same
  entries and decode to the same values as the eager path.

``tests/data/golden_batch_v3.rpbt`` plus its two
``golden_batch_v3.shard-NNNN.rpsh`` files pin wire version 3, the
sharded streaming layout: the head is manifest-only, entries live in the
payload shards, and the fixture is *derived from the v2 fixture's
entries* through ``ShardedArchiveWriter`` — so the regression test can
replay that exact construction and assert byte-equal output, pinning
the streaming write path itself, not just the read path.

If a format change is intentional, bump the container version, keep
readers for every older version, and only then regenerate the fixtures.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.engine import BatchArchive, LazyBatchArchive, is_batch_archive
from tests.helpers import assert_error_bounded, golden_dataset

DATA = Path(__file__).parent / "data"

FIXTURES = {
    1: "golden_batch",
    2: "golden_batch_v2",
}


@pytest.fixture(scope="module", params=sorted(FIXTURES), ids=lambda v: f"v{v}")
def fixture_version(request) -> int:
    return request.param


@pytest.fixture(scope="module")
def golden_blob(fixture_version) -> bytes:
    return (DATA / f"{FIXTURES[fixture_version]}.rpbt").read_bytes()


@pytest.fixture(scope="module")
def expected(fixture_version) -> dict:
    return json.loads((DATA / f"{FIXTURES[fixture_version]}.json").read_text())


class TestGoldenFormat:
    def test_fixture_integrity(self, golden_blob, expected):
        """The fixture pair itself is consistent (guards bad regeneration)."""
        assert len(golden_blob) == expected["n_bytes"]
        assert hashlib.sha256(golden_blob).hexdigest() == expected["sha256"]

    def test_magic_sniff(self, golden_blob):
        assert is_batch_archive(golden_blob)
        assert not is_batch_archive(b"PK\x03\x04whatever")

    def test_wire_version_preserved(self, golden_blob, fixture_version):
        archive = BatchArchive.from_bytes(golden_blob)
        assert archive.version == fixture_version
        for comp in archive.entries.values():
            assert comp.container_version == fixture_version

    def test_deserialization_is_byte_stable(self, golden_blob):
        archive = BatchArchive.from_bytes(golden_blob)
        assert archive.to_bytes() == golden_blob

    def test_manifest_matches_record(self, golden_blob, expected):
        archive = BatchArchive.from_bytes(golden_blob)
        assert archive.keys() == expected["keys"]
        assert archive.manifest() == expected["manifest"]
        assert archive.meta["fixture"] == "golden"

    def test_entries_decompress_to_recorded_values(self, golden_blob, expected):
        archive = BatchArchive.from_bytes(golden_blob)
        for key, level_stats in expected["decompressed"].items():
            restored = archive.decompress(key)
            assert restored.n_levels == len(level_stats)
            for lvl, stats in zip(restored.levels, level_stats):
                assert lvl.level == stats["level"]
                assert lvl.n_points() == stats["n_points"]
                values = lvl.values()
                if not values.size:
                    continue
                assert float(values.sum(dtype=np.float64)) == pytest.approx(
                    stats["sum"], rel=1e-10, abs=1e-10
                )
                assert float(values.min()) == pytest.approx(stats["min"], rel=1e-10)
                assert float(values.max()) == pytest.approx(stats["max"], rel=1e-10)

    def test_entries_honour_recorded_error_bound(self, golden_blob, expected):
        archive = BatchArchive.from_bytes(golden_blob)
        original = golden_dataset()
        assert expected["mode"] == "abs"
        for key in archive.keys():
            restored = archive.decompress(key)
            for orig, back in zip(original.levels, restored.levels):
                assert np.array_equal(orig.mask, back.mask)
                assert_error_bounded(orig.values(), back.values(), expected["eb"])

    def test_both_fixture_versions_hold_identical_payloads(self):
        """v1 and v2 differ only in framing — parts and meta are equal."""
        v1 = BatchArchive.from_bytes((DATA / "golden_batch.rpbt").read_bytes())
        v2 = BatchArchive.from_bytes((DATA / "golden_batch_v2.rpbt").read_bytes())
        assert v1.keys() == v2.keys()
        for key in v1.keys():
            a, b = v1.get(key), v2.get(key)
            assert a.meta == b.meta
            assert list(a.parts) == list(b.parts)
            for name in a.parts:
                assert a.parts[name] == b.parts[name]


class TestGoldenLazyReaders:
    def test_lazy_archive_matches_eager(self, golden_blob, expected):
        eager = BatchArchive.from_bytes(golden_blob)
        with LazyBatchArchive.open(golden_blob) as lazy:
            assert lazy.keys() == eager.keys()
            assert lazy.manifest() == eager.manifest()
            for key in lazy.keys():
                a = eager.decompress(key)
                b = lazy.decompress(key)
                for la, lb in zip(a.levels, b.levels):
                    assert np.array_equal(la.data, lb.data)
                    assert np.array_equal(la.mask, lb.mask)

    def test_lazy_entry_reads_only_itself(self, golden_blob):
        """Random access: decoding one entry never touches its siblings."""
        from repro.engine import codec_for_method

        with LazyBatchArchive.open(golden_blob) as lazy:
            key = "golden/tac"
            entry = lazy.entry(key)
            eager_entry = BatchArchive.from_bytes(golden_blob).get(key)
            assert entry.part_sizes() == eager_entry.part_sizes()
            codec_for_method(entry.method).decompress(entry)
            # Decoding went through this entry's logged store, and the
            # fetched byte total is bounded by this entry alone.
            assert 0 < entry.parts.bytes_read <= eager_entry.compressed_bytes()
            assert entry.parts.accessed() <= set(eager_entry.parts)

    def test_entry_close_leaves_archive_usable(self, golden_blob):
        """An entry's context-manager exit must not poison its siblings
        (entries share the archive's byte source)."""
        with LazyBatchArchive.open(golden_blob) as lazy:
            with lazy.entry("golden/tac") as entry:
                entry.parts["mask/L0"]
            restored = lazy.decompress("golden/1d")
            assert restored.n_levels == 2

    def test_lazy_archive_from_file(self, golden_blob, tmp_path):
        path = tmp_path / "golden.rpbt"
        path.write_bytes(golden_blob)
        with LazyBatchArchive.open(path) as lazy:
            restored = lazy.decompress("golden/1d")
            eager = BatchArchive.from_bytes(golden_blob).decompress("golden/1d")
            for la, lb in zip(eager.levels, restored.levels):
                assert np.array_equal(la.data, lb.data)


class TestGoldenShardedV3:
    """The sharded streaming fixture: head + payload shards stay
    byte-stable, readable, and payload-identical to the v2 archive."""

    @pytest.fixture(scope="class")
    def expected_v3(self) -> dict:
        return json.loads((DATA / "golden_batch_v3.json").read_text())

    @pytest.fixture(scope="class")
    def head_path(self) -> Path:
        return DATA / "golden_batch_v3.rpbt"

    def test_fixture_integrity(self, expected_v3, head_path):
        head = expected_v3["head"]
        blob = head_path.read_bytes()
        assert len(blob) == head["n_bytes"]
        assert hashlib.sha256(blob).hexdigest() == head["sha256"]
        assert is_batch_archive(blob)
        for record in expected_v3["shards"]:
            shard = (DATA / record["name"]).read_bytes()
            assert len(shard) == record["n_bytes"]
            assert hashlib.sha256(shard).hexdigest() == record["sha256"]

    def test_lazy_open_verified(self, expected_v3, head_path):
        with LazyBatchArchive.open(head_path, verify_shards=True) as lazy:
            assert lazy.version == 3
            assert lazy.is_sharded
            assert lazy.keys() == expected_v3["keys"]
            assert [rec["name"] for rec in lazy.shards()] == [
                rec["name"] for rec in expected_v3["shards"]
            ]

    def test_payloads_identical_to_v2_fixture(self, head_path):
        v2 = BatchArchive.from_bytes((DATA / "golden_batch_v2.rpbt").read_bytes())
        with LazyBatchArchive.open(head_path) as lazy:
            assert lazy.keys() == v2.keys()
            assert lazy.manifest() == v2.manifest()
            for key in v2.keys():
                entry = lazy.entry(key)
                reference = v2.get(key)
                assert entry.meta == reference.meta
                assert list(entry.parts) == list(reference.parts)
                for name in reference.parts:
                    assert entry.parts[name] == reference.parts[name]

    def test_entries_decompress_and_honour_bound(self, expected_v3, head_path):
        original = golden_dataset()
        assert expected_v3["mode"] == "abs"
        with LazyBatchArchive.open(head_path) as lazy:
            for key in lazy.keys():
                restored = lazy.decompress(key)
                for orig, back in zip(original.levels, restored.levels):
                    assert np.array_equal(orig.mask, back.mask)
                    assert_error_bounded(
                        orig.values(), back.values(), expected_v3["eb"]
                    )

    def test_streaming_writer_regenerates_fixture_bytes(
        self, expected_v3, head_path, tmp_path
    ):
        """Replaying the fixture construction (v2 entries through
        ShardedArchiveWriter) reproduces the checked-in bytes exactly —
        the write path, not just the read path, is golden-pinned."""
        archive = BatchArchive.from_bytes((DATA / "golden_batch_v2.rpbt").read_bytes())
        head = tmp_path / "golden_batch_v3.rpbt"
        report = archive.save_sharded(
            head, shard_size=expected_v3["shard_size"], container_version=3
        )
        assert head.read_bytes() == head_path.read_bytes()
        assert [p.name for p in report.shard_paths] == [
            rec["name"] for rec in expected_v3["shards"]
        ]
        for path, record in zip(report.shard_paths, expected_v3["shards"]):
            assert path.read_bytes() == (DATA / record["name"]).read_bytes()

    def test_eager_load_materializes_from_shards(self, head_path):
        eager = BatchArchive.load(head_path)
        v2 = BatchArchive.from_bytes((DATA / "golden_batch_v2.rpbt").read_bytes())
        assert eager.keys() == v2.keys()
        for key in v2.keys():
            assert eager.get(key).parts == v2.get(key).parts


class TestGoldenContainerV4:
    """The integrity fixtures: container v4 (per-part CRC-32s in the
    tail index) is pinned through both writers — ``ShardedArchiveWriter``
    streaming the shard set, ``CompressedDataset.to_bytes`` the eager
    ``.rpam`` blob — and carries the same payload bytes as the v2 fixture
    it derives from."""

    @pytest.fixture(scope="class")
    def expected_v4(self) -> dict:
        return json.loads((DATA / "golden_batch_v4.json").read_text())

    @pytest.fixture(scope="class")
    def head_path(self) -> Path:
        return DATA / "golden_batch_v4.rpbt"

    def test_fixture_integrity(self, expected_v4, head_path):
        assert expected_v4["container_version"] == 4
        head = expected_v4["head"]
        blob = head_path.read_bytes()
        assert len(blob) == head["n_bytes"]
        assert hashlib.sha256(blob).hexdigest() == head["sha256"]
        for record in expected_v4["shards"]:
            shard = (DATA / record["name"]).read_bytes()
            assert len(shard) == record["n_bytes"]
            assert hashlib.sha256(shard).hexdigest() == record["sha256"]
        eager = expected_v4["eager_entry"]
        blob = (DATA / eager["name"]).read_bytes()
        assert len(blob) == eager["n_bytes"]
        assert hashlib.sha256(blob).hexdigest() == eager["sha256"]

    def test_entries_are_v4_and_verify_on_read(self, head_path):
        with LazyBatchArchive.open(head_path) as lazy:
            for key in lazy.keys():
                entry = lazy.entry(key)
                assert entry.container_version == 4
                assert entry.parts.verifies_integrity
                for name in entry.parts:
                    entry.parts[name]  # every part passes its CRC

    def test_payloads_identical_to_v2_fixture(self, head_path):
        v2 = BatchArchive.from_bytes((DATA / "golden_batch_v2.rpbt").read_bytes())
        with LazyBatchArchive.open(head_path) as lazy:
            assert lazy.keys() == v2.keys()
            for key in v2.keys():
                entry = lazy.entry(key)
                reference = v2.get(key)
                assert list(entry.parts) == list(reference.parts)
                for name in reference.parts:
                    assert entry.parts[name] == reference.parts[name]

    def test_streaming_writer_regenerates_fixture_bytes(
        self, expected_v4, head_path, tmp_path
    ):
        archive = BatchArchive.from_bytes((DATA / "golden_batch_v2.rpbt").read_bytes())
        head = tmp_path / "golden_batch_v4.rpbt"
        # v4 is the streaming default: no explicit container_version.
        report = archive.save_sharded(head, shard_size=expected_v4["shard_size"])
        assert head.read_bytes() == head_path.read_bytes()
        assert [p.name for p in report.shard_paths] == [
            rec["name"] for rec in expected_v4["shards"]
        ]
        for path, record in zip(report.shard_paths, expected_v4["shards"]):
            assert path.read_bytes() == (DATA / record["name"]).read_bytes()

    def test_eager_writer_regenerates_fixture_bytes(self, expected_v4):
        eager = expected_v4["eager_entry"]
        comp = BatchArchive.from_bytes(
            (DATA / "golden_batch_v2.rpbt").read_bytes()
        ).get(eager["key"])
        comp.container_version = 4
        assert comp.to_bytes() == (DATA / eager["name"]).read_bytes()

    def test_eager_v4_blob_round_trips(self, expected_v4):
        from repro.core.container import CompressedDataset, LazyCompressedDataset

        blob = (DATA / expected_v4["eager_entry"]["name"]).read_bytes()
        comp = CompressedDataset.from_bytes(blob)
        assert comp.container_version == 4
        assert comp.to_bytes() == blob
        with LazyCompressedDataset.open(blob) as lazy:
            assert lazy.parts.verifies_integrity
            for name in comp.parts:
                assert lazy.parts[name] == comp.parts[name]

    def test_flipped_payload_bit_raises_part_integrity_error(self, expected_v4):
        from repro.core.container import LazyCompressedDataset, PartIntegrityError

        blob = bytearray((DATA / expected_v4["eager_entry"]["name"]).read_bytes())
        with LazyCompressedDataset.open(bytes(blob)) as lazy:
            name = next(iter(lazy.parts))
            offset, length = lazy.parts.spans()[name]
        blob[offset + length // 2] ^= 0x01
        with LazyCompressedDataset.open(bytes(blob)) as lazy:
            with pytest.raises(PartIntegrityError, match="CRC-32"):
                lazy.parts[name]


class TestGoldenGSPFormats:
    """Both GSP strategy formats are golden-pinned.

    ``golden_gsp_legacy.rpbt`` is the single-stream layout (strategy
    format 1, one ``L0/grid`` part) every blob used before brick chunking
    existed — its bytes were captured with the pre-brick writer and the
    ``brick_size=None`` path must keep reproducing them exactly.
    ``golden_gsp_bricks.rpbt`` pins strategy format 2 (brick table part +
    one part per brick), and ``golden_gsp_shared.rpbt`` pins the
    shared-table mode on top of it (one ``L<idx>/table`` part per level,
    ``SEC_TABLE_REF`` sections in every stream).  The JSON also records a
    1/8-domain ROI read on the GSP level, so the partial-read *values*
    are pinned for every format, not just the wire bytes.
    """

    STEMS = ["golden_gsp_legacy", "golden_gsp_bricks", "golden_gsp_shared"]

    @pytest.fixture(scope="class")
    def expected_gsp(self) -> dict:
        return json.loads((DATA / "golden_gsp.json").read_text())

    def _blob(self, stem: str) -> bytes:
        return (DATA / f"{stem}.rpbt").read_bytes()

    def _codec(self, stem: str, expected_gsp):
        from repro.core.tac import TACCompressor

        brick = None if stem.endswith("legacy") else expected_gsp["brick_size"]
        return TACCompressor(brick_size=brick, shared_tables=stem.endswith("shared"))

    @pytest.mark.parametrize("stem", STEMS)
    def test_fixture_integrity_and_byte_stability(self, stem, expected_gsp):
        from repro.core.container import CompressedDataset

        blob = self._blob(stem)
        record = expected_gsp["blobs"][stem]
        assert len(blob) == record["n_bytes"]
        assert hashlib.sha256(blob).hexdigest() == record["sha256"]
        assert CompressedDataset.from_bytes(blob).to_bytes() == blob

    @pytest.mark.parametrize("stem", STEMS)
    def test_writer_regenerates_fixture_bytes(self, stem, expected_gsp):
        """Re-compressing the analytic dataset reproduces the checked-in
        bytes — for the legacy stem this proves the ``brick_size=None``
        escape still writes the exact pre-brick format."""
        from tests.helpers import golden_gsp_dataset

        tac = self._codec(stem, expected_gsp)
        blob = tac.compress(
            golden_gsp_dataset(), expected_gsp["eb"], mode=expected_gsp["mode"]
        ).to_bytes()
        assert blob == self._blob(stem)

    @pytest.mark.parametrize("stem", STEMS)
    def test_decode_matches_recorded_stats_and_bound(self, stem, expected_gsp):
        from repro.core.container import CompressedDataset
        from tests.helpers import golden_gsp_dataset

        record = expected_gsp["blobs"][stem]
        comp = CompressedDataset.from_bytes(self._blob(stem))
        assert [m["strategy"] for m in comp.meta["levels"]] == record["strategies"]
        tac = self._codec(stem, expected_gsp)
        restored = tac.decompress(comp)
        original = golden_gsp_dataset()
        for lvl, stats, orig in zip(restored.levels, record["levels"], original.levels):
            assert lvl.level == stats["level"]
            assert lvl.n_points() == stats["n_points"]
            assert float(lvl.values().sum(dtype=np.float64)) == pytest.approx(
                stats["sum"], rel=1e-10, abs=1e-10
            )
            assert_error_bounded(orig.values(), lvl.values(), expected_gsp["eb"])

    @pytest.mark.parametrize("stem", STEMS)
    def test_roi_read_matches_recorded_values(self, stem, expected_gsp):
        from repro.core.container import LazyCompressedDataset

        record = expected_gsp["blobs"][stem]
        roi = tuple(slice(lo, hi) for lo, hi in expected_gsp["roi"])
        tac = self._codec(stem, expected_gsp)
        lazy = LazyCompressedDataset.open(self._blob(stem))
        region = tac.decompress_region(lazy, 0, roi)
        assert float(region.sum(dtype=np.float64)) == pytest.approx(
            record["roi_sum"], rel=1e-10, abs=1e-10
        )
        assert int(np.count_nonzero(region)) == record["roi_nonzero"]
        full = tac.decompress(LazyCompressedDataset.open(self._blob(stem)))
        assert np.array_equal(region, full.levels[0].data[roi])

    def test_brick_fixture_reads_fewer_parts_for_roi(self, expected_gsp):
        """The brick fixture's ROI read fetches a strict subset of the
        parts a full decode touches; the legacy fixture cannot (its GSP
        level is one stream) — the asymmetry the format bump exists for."""
        from repro.core.container import MASK_PREFIX, LazyCompressedDataset

        record = expected_gsp["blobs"]["golden_gsp_bricks"]
        roi = tuple(slice(lo, hi) for lo, hi in expected_gsp["roi"])
        tac = self._codec("golden_gsp_bricks", expected_gsp)
        blob = self._blob("golden_gsp_bricks")

        lazy_full = LazyCompressedDataset.open(blob)
        tac.decompress(lazy_full)
        full_parts = {n for n in lazy_full.parts.accessed() if not n.startswith(MASK_PREFIX)}
        lazy_roi = LazyCompressedDataset.open(blob)
        tac.decompress_region(lazy_roi, 0, roi)
        roi_parts = {n for n in lazy_roi.parts.accessed() if not n.startswith(MASK_PREFIX)}

        assert roi_parts < full_parts
        assert lazy_roi.parts.bytes_read < lazy_full.parts.bytes_read
        n_bricks = record["bricks"]["n"]
        touched = sum(1 for n in roi_parts if n.startswith("L0/b") and n != "L0/bricks")
        assert touched == 8  # 1/8-domain ROI on the 4^3 brick grid
        assert touched < n_bricks

    def test_shared_fixture_roi_reads_table_plus_touched_bricks(self, expected_gsp):
        """The shared fixture's ROI read fetches only the level's shared
        table part plus the bricks the ROI intersects — pruning survives
        the table indirection."""
        from repro.core.container import MASK_PREFIX, LazyCompressedDataset

        record = expected_gsp["blobs"]["golden_gsp_shared"]
        roi = tuple(slice(lo, hi) for lo, hi in expected_gsp["roi"])
        tac = self._codec("golden_gsp_shared", expected_gsp)
        lazy = LazyCompressedDataset.open(self._blob("golden_gsp_shared"))
        tac.decompress_region(lazy, 0, roi)
        parts = {n for n in lazy.parts.accessed() if not n.startswith(MASK_PREFIX)}

        assert record["shared_table"]["part"] in parts
        touched = sum(1 for n in parts if n.startswith("L0/b") and n != "L0/bricks")
        assert touched == 8  # same pruning as the per-stream brick fixture
        assert touched < record["bricks"]["n"]
        # Only metadata/table parts beyond the touched bricks.
        assert parts - {"L0/bricks", "L0/table"} == {
            n for n in parts if n.startswith("L0/b") and n != "L0/bricks"
        }


class TestGoldenIngestDelta:
    """The temporal-delta ingest fixture: a 3-step analytic series written
    through :class:`~repro.ingest.IngestSession` with ``keyframe_interval=2``
    (keyframe, closed-loop delta, cadence keyframe).  Pins the deferred-head
    streamed entries, the ``temporal`` entry/level metadata, the write path
    (full session replay must regenerate the bytes) and the read-side chain
    summation (per-level stats plus one pinned ROI)."""

    @pytest.fixture(scope="class")
    def expected_ingest(self) -> dict:
        return json.loads((DATA / "golden_ingest_delta.json").read_text())

    @pytest.fixture(scope="class")
    def head_path(self) -> Path:
        return DATA / "golden_ingest_delta.rpbt"

    def test_fixture_integrity(self, expected_ingest, head_path):
        head = expected_ingest["head"]
        blob = head_path.read_bytes()
        assert len(blob) == head["n_bytes"]
        assert hashlib.sha256(blob).hexdigest() == head["sha256"]
        assert is_batch_archive(blob)
        for record in expected_ingest["shards"]:
            shard = (DATA / record["name"]).read_bytes()
            assert len(shard) == record["n_bytes"]
            assert hashlib.sha256(shard).hexdigest() == record["sha256"]

    def test_temporal_metadata(self, expected_ingest, head_path):
        assert expected_ingest["temporal"][0]["mode"] == "keyframe"
        assert expected_ingest["temporal"][1]["mode"] == "delta"
        with LazyBatchArchive.open(head_path) as lazy:
            assert lazy.keys() == expected_ingest["keys"]
            for key, temporal in zip(
                expected_ingest["keys"], expected_ingest["temporal"]
            ):
                meta = lazy.entry(key).meta
                assert meta["temporal"] == temporal
                level_tags = {
                    lm.get("temporal") for lm in meta["levels"]
                }
                if temporal["mode"] == "delta":
                    assert level_tags == {"delta"}
                else:
                    assert level_tags == {None}

    def test_session_replay_regenerates_fixture_bytes(
        self, expected_ingest, head_path, tmp_path
    ):
        """Re-running the exact fixture construction — fresh series through
        a fresh IngestSession — must reproduce the checked-in bytes, so the
        whole write path (compress_iter chunking, residual encoding, v5
        deferred-head layout, shard packing) is golden-pinned."""
        from repro.ingest import IngestConfig, IngestSession
        from tests.helpers import golden_timestep_series

        series = golden_timestep_series(len(expected_ingest["keys"]))
        head = tmp_path / "golden_ingest_delta.rpbt"
        config = IngestConfig(
            error_bound=expected_ingest["eb"],
            mode=expected_ingest["mode"],
            keyframe_interval=expected_ingest["keyframe_interval"],
            shard_size=expected_ingest["shard_size"],
        )
        with IngestSession(head, config, meta={"fixture": "golden-ingest"}) as session:
            keys = session.extend(series)
        assert keys == expected_ingest["keys"]
        assert head.read_bytes() == head_path.read_bytes()
        for path, record in zip(
            session.report.write.shard_paths, expected_ingest["shards"]
        ):
            assert path.name == record["name"]
            assert path.read_bytes() == (DATA / record["name"]).read_bytes()

    def test_reconstructions_match_recorded_stats_and_bound(
        self, expected_ingest, head_path
    ):
        from repro.ingest import read_timestep_level
        from repro.serve.reader import ArchiveReader
        from tests.helpers import golden_timestep_series

        series = golden_timestep_series(len(expected_ingest["keys"]))
        with ArchiveReader(head_path) as reader:
            for key, snapshot in zip(expected_ingest["keys"], series):
                for record in expected_ingest["reconstructed"][key]:
                    lvl, _stats = read_timestep_level(reader, key, record["level"])
                    assert int(lvl.mask.sum()) == record["n_points"]
                    got = float(lvl.data[lvl.mask].sum(dtype=np.float64))
                    assert got == record["sum"]  # bit-stable chain sum
                    want = snapshot.levels[record["level"]]
                    assert_error_bounded(
                        want.data[want.mask],
                        lvl.data[lvl.mask],
                        expected_ingest["eb"],
                    )

    def test_pinned_roi_read(self, expected_ingest, head_path):
        from repro.ingest import read_timestep_region
        from repro.serve.reader import ArchiveReader

        roi = tuple(slice(lo, hi) for lo, hi in expected_ingest["roi"])
        with ArchiveReader(head_path) as reader:
            data, stats = read_timestep_region(
                reader, expected_ingest["keys"][1], 0, roi
            )
        assert len(stats) == 2  # keyframe + delta
        assert float(data.sum(dtype=np.float64)) == expected_ingest["roi_sum"]
        assert int(np.count_nonzero(data)) == expected_ingest["roi_nonzero"]
