"""Golden-format regression: stored archives must stay readable, byte-stable.

``tests/data/golden_batch.rpbt`` is a checked-in batch archive holding
the fully analytic :func:`tests.helpers.golden_dataset` compressed by all
four registry codecs (``tests/data/make_golden.py`` regenerates it).  The
assertions pin the container contract future refactors must keep:

* the bytes parse (no silent format break for existing stored archives);
* parse → re-serialize reproduces the identical bytes;
* the manifest matches what was recorded at fixture-creation time;
* every entry still decompresses to the recorded values and honours the
  recorded error bound against the analytically regenerated original.

If a format change is intentional, bump the container version, keep a
reader for version 1, and only then regenerate the fixture.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.engine import BatchArchive, is_batch_archive
from tests.helpers import assert_error_bounded, golden_dataset

DATA = Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def golden_blob() -> bytes:
    return (DATA / "golden_batch.rpbt").read_bytes()


@pytest.fixture(scope="module")
def expected() -> dict:
    return json.loads((DATA / "golden_batch.json").read_text())


class TestGoldenFormat:
    def test_fixture_integrity(self, golden_blob, expected):
        """The fixture pair itself is consistent (guards bad regeneration)."""
        assert len(golden_blob) == expected["n_bytes"]
        assert hashlib.sha256(golden_blob).hexdigest() == expected["sha256"]

    def test_magic_sniff(self, golden_blob):
        assert is_batch_archive(golden_blob)
        assert not is_batch_archive(b"PK\x03\x04whatever")

    def test_deserialization_is_byte_stable(self, golden_blob):
        archive = BatchArchive.from_bytes(golden_blob)
        assert archive.to_bytes() == golden_blob

    def test_manifest_matches_record(self, golden_blob, expected):
        archive = BatchArchive.from_bytes(golden_blob)
        assert archive.keys() == expected["keys"]
        assert archive.manifest() == expected["manifest"]
        assert archive.meta["fixture"] == "golden"

    def test_entries_decompress_to_recorded_values(self, golden_blob, expected):
        archive = BatchArchive.from_bytes(golden_blob)
        for key, level_stats in expected["decompressed"].items():
            restored = archive.decompress(key)
            assert restored.n_levels == len(level_stats)
            for lvl, stats in zip(restored.levels, level_stats):
                assert lvl.level == stats["level"]
                assert lvl.n_points() == stats["n_points"]
                values = lvl.values()
                if not values.size:
                    continue
                assert float(values.sum(dtype=np.float64)) == pytest.approx(
                    stats["sum"], rel=1e-10, abs=1e-10
                )
                assert float(values.min()) == pytest.approx(stats["min"], rel=1e-10)
                assert float(values.max()) == pytest.approx(stats["max"], rel=1e-10)

    def test_entries_honour_recorded_error_bound(self, golden_blob, expected):
        archive = BatchArchive.from_bytes(golden_blob)
        original = golden_dataset()
        assert expected["mode"] == "abs"
        for key in archive.keys():
            restored = archive.decompress(key)
            for orig, back in zip(original.levels, restored.levels):
                assert np.array_equal(orig.mask, back.mask)
                assert_error_bounded(orig.values(), back.values(), expected["eb"])
