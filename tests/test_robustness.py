"""Failure injection and cross-cutting property tests.

Compressed archives travel through file systems and networks; a production
codec must fail loudly on damaged input, never return silently-wrong data.
These tests corrupt, truncate, and drop pieces of real archives and assert
that every path raises instead of fabricating values.
"""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.zmesh import level_traversal_keys, zmesh_order
from repro.core.container import CompressedDataset
from repro.core.tac import TACCompressor
from tests.helpers import two_level_dataset


@pytest.fixture(scope="module")
def tac_archive(z10_small):
    tac = TACCompressor()
    return tac, tac.compress(z10_small, 1e-3, mode="rel")


class TestFailureInjection:
    def test_missing_payload_part_raises(self, tac_archive):
        tac, comp = tac_archive
        broken = CompressedDataset(
            method=comp.method,
            dataset_name=comp.dataset_name,
            parts={k: v for k, v in comp.parts.items() if not k.startswith("L0/")},
            meta=comp.meta,
        )
        with pytest.raises((KeyError, ValueError)):
            tac.decompress(broken)

    def test_corrupted_payload_raises(self, tac_archive):
        tac, comp = tac_archive
        for key in comp.parts:
            if key.startswith("L0/g") or key.endswith("/grid"):
                parts = dict(comp.parts)
                blob = bytearray(parts[key])
                blob[len(blob) // 2] ^= 0xFF
                blob = blob[: max(8, len(blob) // 2)]  # truncate too
                parts[key] = bytes(blob)
                broken = CompressedDataset(
                    method=comp.method, dataset_name=comp.dataset_name,
                    parts=parts, meta=comp.meta,
                )
                with pytest.raises((ValueError, Exception)):
                    out = tac.decompress(broken)
                    # If parsing somehow survives, the values must still
                    # differ detectably — never a silent pass-through.
                    assert not np.array_equal(out.levels[0].data, tac.decompress(comp).levels[0].data)
                break

    def test_corrupted_mask_raises(self, tac_archive):
        tac, comp = tac_archive
        parts = dict(comp.parts)
        parts["mask/L0"] = b"\x00" * 10
        broken = CompressedDataset(
            method=comp.method, dataset_name=comp.dataset_name, parts=parts, meta=comp.meta
        )
        with pytest.raises(zlib.error):
            tac.decompress(broken)

    def test_truncated_container_raises(self, tac_archive):
        _, comp = tac_archive
        blob = comp.to_bytes()
        with pytest.raises(ValueError):
            CompressedDataset.from_bytes(blob[: len(blob) - 7])

    def test_meta_level_mismatch_raises(self, tac_archive):
        tac, comp = tac_archive
        meta = dict(comp.meta)
        meta["levels"] = comp.meta["levels"][:1]
        meta["shapes"] = comp.meta["shapes"][:1]
        partial = CompressedDataset(
            method=comp.method, dataset_name=comp.dataset_name,
            parts=comp.parts, meta=meta,
        )
        # One-level rebuild from two-level parts: grid ratio check fires.
        with pytest.raises(ValueError, match="tile the domain"):
            recon = tac.decompress(partial)
            recon.validate()


class TestZMeshProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31), st.floats(0.1, 0.9))
    def test_order_is_bijection(self, seed, fine_fraction):
        ds = two_level_dataset(n=8, fine_fraction=fine_fraction, seed=seed)
        order = zmesh_order(ds)
        assert np.array_equal(np.sort(order), np.arange(ds.total_points()))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31))
    def test_keys_unique_and_deterministic(self, seed):
        ds = two_level_dataset(n=8, seed=seed)
        keys = np.concatenate(
            [level_traversal_keys(l.mask, l.level, ds.n_levels) for l in ds.levels]
        )
        assert np.unique(keys).size == keys.size
        again = np.concatenate(
            [level_traversal_keys(l.mask, l.level, ds.n_levels) for l in ds.levels]
        )
        assert np.array_equal(keys, again)


class TestEndToEndProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(0, 2**31),
        st.floats(0.1, 0.9),
        st.sampled_from([1e-2, 1e-4]),
    )
    def test_tac_roundtrip_random_structures(self, seed, fine_fraction, eb):
        ds = two_level_dataset(n=16, fine_fraction=fine_fraction, seed=seed)
        tac = TACCompressor()
        comp = tac.compress(ds, eb, mode="rel")
        recon = tac.decompress(comp)
        for lo, ld, meta in zip(ds.levels, recon.levels, comp.meta["levels"]):
            if lo.n_points() == 0:
                continue
            err = np.max(np.abs(lo.values().astype(np.float64) - ld.values()))
            assert err <= meta["eb_abs"] * 1.001 + 1e-12

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 2**31))
    def test_container_serialization_idempotent(self, seed):
        ds = two_level_dataset(n=8, seed=seed)
        comp = TACCompressor().compress(ds, 1e-3, mode="rel")
        once = CompressedDataset.from_bytes(comp.to_bytes())
        twice = CompressedDataset.from_bytes(once.to_bytes())
        assert once.parts == twice.parts
        assert once.meta == twice.meta
