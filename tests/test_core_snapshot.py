"""Unit tests for multi-field snapshot compression."""

import numpy as np
import pytest

from repro.amr.reconstruct import max_level_errors
from repro.core.container import CompressedDataset
from repro.core.snapshot import SnapshotCompressor, snapshot_savings
from repro.core.tac import TACCompressor, TACConfig
from repro.sim.datasets import make_dataset

FIELDS = ("baryon_density", "temperature", "velocity_x")


@pytest.fixture(scope="module")
def snapshot_fields():
    return {f: make_dataset("Run1_Z10", scale=8, field=f) for f in FIELDS}


class TestSnapshotRoundTrip:
    def test_all_fields_roundtrip_bounded(self, snapshot_fields):
        snap = SnapshotCompressor()
        archive = snap.compress(snapshot_fields, 1e-3, mode="rel")
        restored = snap.decompress(archive)
        assert sorted(restored) == sorted(FIELDS)
        for name, ds in snapshot_fields.items():
            errs = max_level_errors(ds, restored[name])
            ebs = [m["eb_abs"] for m in archive.meta["field_meta"][name]["levels"]]
            for err, eb in zip(errs, ebs):
                assert err <= eb * 1.001 + 1e-9, name

    def test_masks_stored_once(self, snapshot_fields):
        snap = SnapshotCompressor()
        archive = snap.compress(snapshot_fields, 1e-3)
        mask_parts = [k for k in archive.parts if k.startswith("mask/")]
        n_levels = snapshot_fields[FIELDS[0]].n_levels
        assert len(mask_parts) == n_levels  # not n_levels * n_fields

    def test_smaller_than_independent_blobs(self, snapshot_fields):
        snap = SnapshotCompressor()
        archive = snap.compress(snapshot_fields, 1e-3)
        tac = TACCompressor()
        independent = {f: tac.compress(ds, 1e-3) for f, ds in snapshot_fields.items()}
        assert snapshot_savings(archive, independent) > 0

    def test_selective_decompression(self, snapshot_fields):
        snap = SnapshotCompressor()
        archive = snap.compress(snapshot_fields, 1e-3)
        only = snap.decompress(archive, fields=["temperature"])
        assert list(only) == ["temperature"]

    def test_unknown_field_selection_rejected(self, snapshot_fields):
        snap = SnapshotCompressor()
        archive = snap.compress(snapshot_fields, 1e-3)
        with pytest.raises(ValueError, match="not in archive"):
            snap.decompress(archive, fields=["pressure"])

    def test_container_serialization(self, snapshot_fields):
        snap = SnapshotCompressor()
        archive = snap.compress(snapshot_fields, 1e-3)
        restored = CompressedDataset.from_bytes(archive.to_bytes())
        out = snap.decompress(restored, fields=["baryon_density"])
        assert out["baryon_density"].total_points() == snapshot_fields["baryon_density"].total_points()


class TestSnapshotOptions:
    def test_per_field_error_bounds(self, snapshot_fields):
        snap = SnapshotCompressor()
        archive = snap.compress(
            snapshot_fields, 1e-3, per_field_eb={"temperature": 1e-2}
        )
        temp_eb = archive.meta["field_meta"]["temperature"]["levels"][0]["eb_abs"]
        rho_eb = archive.meta["field_meta"]["baryon_density"]["levels"][0]["eb_abs"]
        # Relative bounds resolve per field; temperature got the looser one.
        temp_ds = snapshot_fields["temperature"]
        vals = np.concatenate([l.values() for l in temp_ds.levels])
        assert temp_eb == pytest.approx(1e-2 * (vals.max() - vals.min()), rel=1e-5)
        assert rho_eb != temp_eb

    def test_unknown_per_field_eb_rejected(self, snapshot_fields):
        with pytest.raises(ValueError, match="not in snapshot"):
            SnapshotCompressor().compress(snapshot_fields, 1e-3, per_field_eb={"nope": 1})

    def test_parallel_workers_match_serial(self, snapshot_fields):
        serial = SnapshotCompressor(workers=1).compress(snapshot_fields, 1e-3)
        parallel = SnapshotCompressor(workers=3).compress(snapshot_fields, 1e-3)
        assert serial.parts.keys() == parallel.parts.keys()
        for key in serial.parts:
            assert serial.parts[key] == parallel.parts[key], key

    def test_structure_mismatch_rejected(self, snapshot_fields):
        bad = dict(snapshot_fields)
        bad["other"] = make_dataset("Run1_Z5", scale=8)  # different masks
        with pytest.raises(ValueError, match="structure"):
            SnapshotCompressor().compress(bad, 1e-3)

    def test_empty_snapshot_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SnapshotCompressor().compress({}, 1e-3)

    def test_custom_config_propagates(self, snapshot_fields):
        cfg = TACConfig(unit_block=8)
        snap = SnapshotCompressor(cfg)
        archive = snap.compress(snapshot_fields, 1e-3)
        for meta in archive.meta["field_meta"].values():
            for lvl in meta["levels"]:
                if "unit_block" in lvl:
                    assert lvl["unit_block"] == 8
