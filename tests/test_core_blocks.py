"""Unit tests for unit-block utilities (occupancy, integral image, gather)."""

import numpy as np
import pytest

from repro.core.blocks import (
    AXIS_PERMS,
    BlockExtraction,
    block_counts,
    block_occupancy,
    box_count,
    canonical_orientation,
    gather_blocks,
    integral_image,
    invert_perm,
    pad_to_blocks,
)


class TestPadding:
    def test_no_padding_when_divisible(self):
        data = np.zeros((8, 8, 8))
        assert pad_to_blocks(data, 4) is data

    def test_pads_up_to_multiple(self):
        data = np.ones((5, 6, 7))
        padded = pad_to_blocks(data, 4)
        assert padded.shape == (8, 8, 8)
        assert padded[:5, :6, :7].sum() == data.sum()
        assert padded.sum() == data.sum()  # zero padding


class TestOccupancy:
    def test_empty_and_full_blocks(self):
        mask = np.zeros((8, 8, 8), dtype=bool)
        mask[:4, :4, :4] = True
        occ = block_occupancy(mask, 4)
        assert occ.shape == (2, 2, 2)
        assert occ[0, 0, 0] and occ.sum() == 1

    def test_partial_block_counts_as_occupied(self):
        mask = np.zeros((4, 4, 4), dtype=bool)
        mask[0, 0, 0] = True
        assert block_occupancy(mask, 4).all()

    def test_block_counts(self):
        mask = np.zeros((4, 4, 4), dtype=bool)
        mask[:2, :2, :2] = True
        counts = block_counts(mask, 2)
        assert counts[0, 0, 0] == 8
        assert counts.sum() == 8


class TestIntegralImage:
    def test_matches_brute_force(self, rng):
        occ = rng.random((5, 6, 7)) < 0.5
        table = integral_image(occ)
        for _ in range(20):
            lo = [rng.integers(0, d) for d in occ.shape]
            hi = [rng.integers(l, d) + 1 for l, d in zip(lo, occ.shape)]
            want = occ[lo[0] : hi[0], lo[1] : hi[1], lo[2] : hi[2]].sum()
            got = box_count(table, tuple(lo), tuple(hi))
            assert got == want

    def test_vectorized_queries(self, rng):
        occ = rng.random((4, 4, 4)) < 0.5
        table = integral_image(occ)
        x1 = np.array([1, 2, 3])
        total = box_count(table, (0, 0, 0), (x1, 4, 4))
        for i, x in enumerate(x1):
            assert total[i] == occ[:x].sum()


class TestOrientation:
    def test_identity_for_sorted_shapes(self):
        canonical, perm_id = canonical_orientation((8, 4, 2))
        assert canonical == (8, 4, 2)
        assert AXIS_PERMS[perm_id] == (0, 1, 2)

    def test_sorts_descending(self):
        canonical, perm_id = canonical_orientation((2, 8, 4))
        assert canonical == (8, 4, 2)

    def test_invert_perm_roundtrip(self):
        for perm in AXIS_PERMS:
            inv = invert_perm(perm)
            assert tuple(perm[inv[i]] for i in range(3)) == (0, 1, 2)

    def test_transpose_consistency(self, rng):
        block = rng.standard_normal((2, 8, 4))
        canonical, perm_id = canonical_orientation(block.shape)
        perm = AXIS_PERMS[perm_id]
        rotated = block.transpose(perm)
        assert rotated.shape == canonical
        assert np.array_equal(rotated.transpose(invert_perm(perm)), block)


class TestGatherScatter:
    def test_gather_then_reassemble_is_identity(self, rng):
        data = rng.standard_normal((8, 8, 8)).astype(np.float32)
        origins = np.array([[0, 0, 0], [4, 4, 4]], dtype=np.int32)
        shape = (4, 4, 4)
        stacked = gather_blocks(data, origins, shape)
        ext = BlockExtraction(padded_shape=(8, 8, 8), orig_shape=(8, 8, 8), block_size=4)
        ext.groups[shape] = stacked
        ext.coords[shape] = origins
        ext.perms[shape] = np.zeros(2, dtype=np.uint8)
        out = ext.reassemble(dtype=np.float32)
        assert np.array_equal(out[:4, :4, :4], data[:4, :4, :4])
        assert np.array_equal(out[4:, 4:, 4:], data[4:, 4:, 4:])

    def test_gather_with_orientation(self, rng):
        data = rng.standard_normal((8, 8, 8)).astype(np.float32)
        in_shape = (2, 4, 8)
        canonical, perm_id = canonical_orientation(in_shape)
        stacked = gather_blocks(
            data, np.array([[0, 0, 0]], dtype=np.int32), canonical,
            np.array([perm_id], dtype=np.uint8),
        )
        assert stacked.shape == (1, *canonical)
        ext = BlockExtraction(padded_shape=(8, 8, 8), orig_shape=(8, 8, 8), block_size=2)
        ext.groups[canonical] = stacked
        ext.coords[canonical] = np.array([[0, 0, 0]], dtype=np.int32)
        ext.perms[canonical] = np.array([perm_id], dtype=np.uint8)
        out = ext.reassemble(dtype=np.float32)
        assert np.array_equal(out[:2, :4, :8], data[:2, :4, :8])

    def test_metadata_cells_counts_coords_and_perms(self):
        ext = BlockExtraction(padded_shape=(4, 4, 4), orig_shape=(4, 4, 4), block_size=2)
        ext.coords[(2, 2, 2)] = np.zeros((3, 3), dtype=np.int32)
        ext.perms[(2, 2, 2)] = np.zeros(3, dtype=np.uint8)
        assert ext.metadata_cells() == 12

    def test_crop(self):
        ext = BlockExtraction(padded_shape=(8, 8, 8), orig_shape=(5, 6, 7), block_size=4)
        assert ext.crop(np.zeros((8, 8, 8))).shape == (5, 6, 7)

    def test_reassemble_rejects_bad_out(self):
        ext = BlockExtraction(padded_shape=(4, 4, 4), orig_shape=(4, 4, 4), block_size=2)
        with pytest.raises(ValueError, match="out shape"):
            ext.reassemble(out=np.zeros((2, 2, 2)))
