"""Unit + property tests for NaST, OpST, AKDTree: the extraction strategies.

The load-bearing invariant for every strategy: extracted sub-blocks are
disjoint and cover every occupied unit block exactly once, so scatter-back
reproduces the level bit-exactly (the lossy step is only ever the codec).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.akdtree import akdtree_extract, akdtree_plan, akdtree_restore
from repro.core.blocks import block_occupancy
from repro.core.nast import nast_extract, nast_restore
from repro.core.opst import compute_bs, opst_extract, opst_plan, opst_restore
from tests.helpers import random_mask, smooth_cube


def brute_force_bs(occ: np.ndarray) -> np.ndarray:
    out = np.zeros(occ.shape, dtype=np.int32)
    for x in range(occ.shape[0]):
        for y in range(occ.shape[1]):
            for z in range(occ.shape[2]):
                s = 0
                while (
                    x - s >= 0
                    and y - s >= 0
                    and z - s >= 0
                    and occ[x - s : x + 1, y - s : y + 1, z - s : z + 1].all()
                ):
                    s += 1
                out[x, y, z] = s
    return out


def cover_from_cubes(cubes, shape):
    cover = np.zeros(shape, dtype=np.int32)
    for (ox, oy, oz), s in cubes:
        cover[ox : ox + s, oy : oy + s, oz : oz + s] += 1
    return cover


def cover_from_leaves(leaves, shape):
    cover = np.zeros(shape, dtype=np.int32)
    for (ox, oy, oz), (sx, sy, sz) in leaves:
        cover[ox : ox + sx, oy : oy + sy, oz : oz + sz] += 1
    return cover


class TestComputeBS:
    def test_matches_brute_force_random(self, rng):
        for _ in range(5):
            occ = rng.random((6, 7, 5)) < 0.6
            assert np.array_equal(compute_bs(occ), brute_force_bs(occ))

    def test_full_grid(self):
        occ = np.ones((4, 4, 4), dtype=bool)
        bs = compute_bs(occ)
        assert bs[3, 3, 3] == 4
        assert bs[0, 0, 0] == 1

    def test_empty_grid(self):
        assert compute_bs(np.zeros((3, 3, 3), dtype=bool)).sum() == 0

    def test_max_side_cap(self):
        occ = np.ones((4, 4, 4), dtype=bool)
        assert compute_bs(occ, max_side=2).max() == 2


class TestOpSTPlan:
    def test_cover_exact_on_random(self, rng):
        for density in (0.1, 0.5, 0.9):
            occ = rng.random((6, 6, 6)) < density
            cover = cover_from_cubes(opst_plan(occ), occ.shape)
            assert np.array_equal(cover > 0, occ)
            assert cover.max(initial=0) <= 1

    def test_full_grid_single_cube(self):
        occ = np.ones((4, 4, 4), dtype=bool)
        cubes = opst_plan(occ)
        assert len(cubes) == 1
        assert cubes[0] == ((0, 0, 0), 4)

    def test_empty_grid_no_cubes(self):
        assert opst_plan(np.zeros((4, 4, 4), dtype=bool)) == []

    def test_prefers_large_cubes(self):
        occ = np.zeros((6, 6, 6), dtype=bool)
        occ[:4, :4, :4] = True
        cubes = opst_plan(occ)
        sizes = sorted(s for _, s in cubes)
        assert max(sizes) == 4

    def test_non_cubic_grid(self, rng):
        occ = rng.random((3, 8, 5)) < 0.5
        cover = cover_from_cubes(opst_plan(occ), occ.shape)
        assert np.array_equal(cover > 0, occ)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6), st.floats(0.05, 0.95), st.integers(0, 2**31))
    def test_property_exact_cover(self, side, density, seed):
        rng = np.random.default_rng(seed)
        occ = rng.random((side, side, side)) < density
        cover = cover_from_cubes(opst_plan(occ), occ.shape)
        assert np.array_equal(cover > 0, occ)
        assert cover.max(initial=0) <= 1


class TestAKDTreePlan:
    def test_cover_exact_on_random(self, rng):
        for density in (0.1, 0.5, 0.9):
            occ = rng.random((8, 8, 8)) < density
            cover = cover_from_leaves(akdtree_plan(occ), (8, 8, 8))
            assert np.array_equal(cover > 0, occ)
            assert cover.max(initial=0) <= 1

    def test_full_grid_single_leaf(self):
        occ = np.ones((8, 8, 8), dtype=bool)
        leaves = akdtree_plan(occ)
        assert leaves == [((0, 0, 0), (8, 8, 8))]

    def test_empty_grid(self):
        assert akdtree_plan(np.zeros((4, 4, 4), dtype=bool)) == []

    def test_pads_non_pow2_grids(self, rng):
        occ = rng.random((5, 6, 7)) < 0.5
        leaves = akdtree_plan(occ)
        cover = cover_from_leaves(leaves, (8, 8, 8))
        padded = np.zeros((8, 8, 8), dtype=bool)
        padded[:5, :6, :7] = occ
        assert np.array_equal(cover > 0, padded)

    def test_adaptive_beats_fixed_on_planar_mask(self):
        # A full half-space along y: adaptive splitting finds it with one
        # big leaf; fixed round-robin fragments it.
        occ = np.zeros((8, 8, 8), dtype=bool)
        occ[:, :4, :] = True
        adaptive = akdtree_plan(occ, adaptive=True)
        fixed = akdtree_plan(occ, adaptive=False)
        assert len(adaptive) <= len(fixed)
        assert max(np.prod(s) for _, s in adaptive) >= max(np.prod(s) for _, s in fixed)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 9), st.floats(0.05, 0.95), st.integers(0, 2**31), st.booleans())
    def test_property_exact_cover(self, side, density, seed, adaptive):
        rng = np.random.default_rng(seed)
        occ = rng.random((side, side, side)) < density
        leaves = akdtree_plan(occ, adaptive=adaptive)
        pow2 = 1 << (side - 1).bit_length()
        cover = cover_from_leaves(leaves, (pow2,) * 3)
        padded = np.zeros((pow2,) * 3, dtype=bool)
        padded[:side, :side, :side] = occ
        assert np.array_equal(cover > 0, padded)
        assert cover.max(initial=0) <= 1


class TestExtractRestore:
    @pytest.mark.parametrize(
        "extract,restore",
        [
            (nast_extract, nast_restore),
            (opst_extract, opst_restore),
            (akdtree_extract, akdtree_restore),
        ],
        ids=["nast", "opst", "akdtree"],
    )
    @pytest.mark.parametrize("density", [0.05, 0.4, 0.95])
    def test_masked_data_roundtrip(self, extract, restore, density, rng):
        n, block = 16, 4
        mask = random_mask((n, n, n), density, seed=int(density * 100), block=2)
        data = np.where(mask, smooth_cube(n), np.float32(0))
        ext = extract(data, mask, block)
        out = restore(ext, dtype=data.dtype)
        assert out.shape == data.shape
        assert np.array_equal(np.where(mask, out, 0), data)

    @pytest.mark.parametrize(
        "extract", [nast_extract, opst_extract, akdtree_extract],
        ids=["nast", "opst", "akdtree"],
    )
    def test_extraction_covers_occupied_cells_once(self, extract, rng):
        n, block = 12, 4
        mask = random_mask((n, n, n), 0.5, seed=3)
        data = np.where(mask, smooth_cube(n), np.float32(0))
        ext = extract(data, mask, block)
        occupied_blocks = int(block_occupancy(mask, block).sum())
        assert ext.total_cells() == occupied_blocks * block**3

    @pytest.mark.parametrize(
        "extract", [nast_extract, opst_extract, akdtree_extract],
        ids=["nast", "opst", "akdtree"],
    )
    def test_empty_level(self, extract):
        data = np.zeros((8, 8, 8), dtype=np.float32)
        mask = np.zeros((8, 8, 8), dtype=bool)
        ext = extract(data, mask, 4)
        assert ext.n_blocks() == 0

    def test_non_divisible_grid_padding(self, rng):
        n = 10  # not a multiple of block 4
        mask = random_mask((n, n, n), 0.5, seed=9)
        data = np.where(mask, smooth_cube(n), np.float32(0))
        for extract, restore in (
            (nast_extract, nast_restore),
            (opst_extract, opst_restore),
            (akdtree_extract, akdtree_restore),
        ):
            out = restore(extract(data, mask, 4), dtype=data.dtype)
            assert out.shape == (n, n, n)
            assert np.array_equal(np.where(mask, out, 0), data)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes differ"):
            nast_extract(np.zeros((4, 4, 4)), np.zeros((4, 4, 2), dtype=bool), 2)

    def test_opst_boundary_fraction_below_nast(self, rng):
        # OpST's whole point: larger blocks => fewer boundary cells.
        n = 24
        mask = random_mask((n, n, n), 0.4, seed=5, block=8)
        data = np.where(mask, smooth_cube(n), np.float32(0))
        def boundary_cells(ext):
            total = 0
            for shape, arr in ext.groups.items():
                m = arr.shape[0]
                interior = max(shape[0] - 2, 0) * max(shape[1] - 2, 0) * max(shape[2] - 2, 0)
                total += m * (np.prod(shape) - interior)
            return total
        nast_b = boundary_cells(nast_extract(data, mask, 4))
        opst_b = boundary_cells(opst_extract(data, mask, 4))
        assert opst_b <= nast_b
