"""Cross-module integration tests: every method on every small dataset.

These are the contracts the whole evaluation rests on:

1. every compressor honours its per-level absolute error bound;
2. structure (masks, grids) survives every round trip;
3. accounting is self-consistent (CR x bit-rate == 32 for float32);
4. the paper's qualitative orderings hold on the synthetic data.
"""

import numpy as np
import pytest

from repro.amr.reconstruct import max_level_errors, uniform_pair
from repro.analysis.metrics import psnr
from repro.baselines import Naive1DCompressor, Uniform3DCompressor, ZMeshCompressor
from repro.core.tac import TACCompressor
from repro.sim.datasets import make_dataset

METHODS = {
    "tac": TACCompressor,
    "baseline_1d": Naive1DCompressor,
    "zmesh": ZMeshCompressor,
    "baseline_3d": Uniform3DCompressor,
}

DATASETS = ("Run1_Z10", "Run1_Z3", "Run2_T2", "Run2_T3")


@pytest.fixture(scope="module")
def datasets():
    return {name: make_dataset(name, scale=8) for name in DATASETS}


@pytest.mark.parametrize("method", list(METHODS))
@pytest.mark.parametrize("name", DATASETS)
class TestEveryMethodEveryDataset:
    def test_bound_and_structure(self, method, name, datasets):
        ds = datasets[name]
        compressor = METHODS[method]()
        comp = compressor.compress(ds, 1e-3, mode="rel")
        recon = compressor.decompress(comp)
        # Structure preserved.
        assert recon.n_levels == ds.n_levels
        for a, b in zip(ds.levels, recon.levels):
            assert a.shape == b.shape
            assert np.array_equal(a.mask, b.mask)
        # Per-level bound honoured.
        ebs = (
            comp.meta["level_ebs"]
            if "level_ebs" in comp.meta
            else [m["eb_abs"] for m in comp.meta["levels"]]
        )
        for err, eb in zip(max_level_errors(ds, recon), ebs):
            assert err <= eb * 1.001 + 1e-9

    def test_accounting_consistent(self, method, name, datasets):
        ds = datasets[name]
        comp = METHODS[method]().compress(ds, 1e-3, mode="rel")
        assert comp.n_values == ds.total_points()
        assert comp.original_bytes == 4 * ds.total_points()
        assert comp.ratio() * comp.bit_rate() == pytest.approx(32.0, rel=1e-9)
        assert comp.compressed_bytes() == sum(comp.part_sizes().values())


class TestPaperOrderings:
    """The qualitative results the evaluation section reports."""

    def test_tac_beats_1d_on_sparse_finest(self, datasets):
        # Fig. 14a/15: level-wise 3D compression wins at equal distortion.
        ds = datasets["Run1_Z10"]
        eb = 1e-3
        tac = TACCompressor().compress(ds, eb, mode="rel")
        one_d = Naive1DCompressor().compress(ds, eb, mode="rel")
        assert tac.bit_rate(include_masks=False) < one_d.bit_rate(include_masks=False)

    def test_zmesh_not_better_than_1d_on_tree_data(self, datasets):
        # Section 4.4: no redundancy to exploit on tree-based AMR.
        ds = datasets["Run1_Z10"]
        eb = 1e-3
        zmesh = ZMeshCompressor().compress(ds, eb, mode="rel")
        one_d = Naive1DCompressor().compress(ds, eb, mode="rel")
        assert zmesh.bit_rate(include_masks=False) >= one_d.bit_rate(include_masks=False) * 0.98

    def test_3d_baseline_collapses_on_run2(self, datasets):
        # Fig. 15/Table 2: up-sampling redundancy inflates the 3D baseline.
        ds = datasets["Run2_T3"]
        eb = 1e-3
        tac = TACCompressor().compress(ds, eb, mode="rel")
        b3d = Uniform3DCompressor().compress(ds, eb, mode="rel")
        assert b3d.bit_rate(include_masks=False) > 5 * tac.bit_rate(include_masks=False)

    def test_3d_baseline_competitive_on_dense_finest(self, datasets):
        # Fig. 14c: with a 64%-dense finest level the 3D baseline is close
        # to or better than TAC.
        ds = datasets["Run1_Z3"]
        eb = 1e-3
        tac = TACCompressor().compress(ds, eb, mode="rel")
        b3d = Uniform3DCompressor().compress(ds, eb, mode="rel")
        assert b3d.bit_rate(include_masks=False) < 1.5 * tac.bit_rate(include_masks=False)

    def test_distortion_similar_at_same_bound(self, datasets):
        # All level-wise methods share the absolute bound, so uniform-grid
        # PSNR should be in the same ballpark.
        ds = datasets["Run1_Z10"]
        eb = 1e-3
        values = {}
        for label in ("tac", "baseline_1d", "zmesh"):
            compressor = METHODS[label]()
            recon = compressor.decompress(compressor.compress(ds, eb, mode="rel"))
            a, b = uniform_pair(ds, recon)
            values[label] = psnr(a, b)
        spread = max(values.values()) - min(values.values())
        assert spread < 6.0, values


class TestAdaptiveErrorBoundEffect:
    def test_skewed_bounds_preserve_uniform_quality(self, datasets):
        # §4.5: moving error budget from fine to coarse at fixed distortion
        # shifts bytes without violating bounds.
        ds = datasets["Run1_Z10"]
        tac = TACCompressor()
        even = tac.compress(ds, 1e-3, mode="rel")
        skew = tac.compress(ds, 1e-3, mode="rel", per_level_scale=[3, 1])
        recon = tac.decompress(skew)
        for err, meta in zip(max_level_errors(ds, recon), skew.meta["levels"]):
            assert err <= meta["eb_abs"] * 1.001
        assert skew.compressed_bytes() != even.compressed_bytes()
