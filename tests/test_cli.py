"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.amr.io import load_dataset
from repro.cli import main


@pytest.fixture
def dataset_file(tmp_path):
    path = tmp_path / "z10.npz"
    code = main(["make", "Run1_Z10", "-o", str(path), "--scale", "8"])
    assert code == 0
    return path


class TestMakeInfo:
    def test_make_writes_loadable_dataset(self, dataset_file):
        ds = load_dataset(dataset_file)
        assert ds.name == "Run1_Z10"
        ds.validate()

    def test_make_rejects_unknown_dataset(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["make", "NotADataset", "-o", str(tmp_path / "x.npz")])

    def test_info_prints_summary(self, dataset_file, capsys):
        assert main(["info", str(dataset_file)]) == 0
        out = capsys.readouterr().out
        assert "Run1_Z10" in out
        assert "level 0" in out and "level 1" in out
        assert "density" in out

    def test_make_with_field_and_seed(self, tmp_path):
        path = tmp_path / "temp.npz"
        assert main([
            "make", "Run2_T2", "-o", str(path), "--scale", "8",
            "--field", "temperature", "--seed", "5",
        ]) == 0
        assert load_dataset(path).field == "temperature"


class TestCompressDecompress:
    @pytest.mark.parametrize("method", ["tac", "1d", "zmesh", "3d"])
    def test_roundtrip_every_method(self, dataset_file, tmp_path, method, capsys):
        archive = tmp_path / f"{method}.tac"
        restored_path = tmp_path / f"{method}.npz"
        assert main([
            "compress", str(dataset_file), "-o", str(archive),
            "--eb", "1e-3", "--method", method,
        ]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out
        assert main(["decompress", str(archive), "-o", str(restored_path)]) == 0

        original = load_dataset(dataset_file)
        restored = load_dataset(restored_path)
        assert restored.n_levels == original.n_levels
        for a, b in zip(original.levels, restored.levels):
            assert np.array_equal(a.mask, b.mask)
            vals = np.concatenate([l.values() for l in original.levels])
            eb_abs = 1e-3 * (vals.max() - vals.min())
            assert np.max(np.abs(a.values() - b.values())) <= eb_abs * 1.001

    def test_per_level_scales(self, dataset_file, tmp_path):
        archive = tmp_path / "scaled.tac"
        assert main([
            "compress", str(dataset_file), "-o", str(archive),
            "--eb", "1e-3", "--level-scale", "3", "1",
        ]) == 0

    def test_lorenzo_predictor_option(self, dataset_file, tmp_path):
        archive = tmp_path / "lor.tac"
        assert main([
            "compress", str(dataset_file), "-o", str(archive),
            "--predictor", "lorenzo",
        ]) == 0

    def test_hybrid_method(self, dataset_file, tmp_path):
        archive = tmp_path / "hyb.tac"
        assert main([
            "compress", str(dataset_file), "-o", str(archive),
            "--method", "tac-hybrid",
        ]) == 0

    def test_decompress_garbage_fails_cleanly(self, tmp_path):
        bad = tmp_path / "bad.tac"
        bad.write_bytes(b"junk")
        with pytest.raises(ValueError):
            main(["decompress", str(bad), "-o", str(tmp_path / "out.npz")])


class TestBatchCommand:
    @pytest.fixture
    def second_file(self, tmp_path):
        path = tmp_path / "t2.npz"
        assert main(["make", "Run2_T2", "-o", str(path), "--scale", "16"]) == 0
        return path

    def test_batch_compress_info_extract(self, dataset_file, second_file, tmp_path, capsys):
        archive = tmp_path / "batch.rpbt"
        assert main([
            "batch", str(dataset_file), str(second_file), "-o", str(archive),
            "--eb", "1e-3", "--workers", "4", "--level-workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out and "ratio" in out

        assert main(["info", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "batch archive" in out and "z10/baryon_density/tac" in out

        restored_path = tmp_path / "back.npz"
        assert main([
            "decompress", str(archive), "-o", str(restored_path),
            "--key", "z10/baryon_density/tac",
        ]) == 0
        original = load_dataset(dataset_file)
        restored = load_dataset(restored_path)
        assert restored.n_levels == original.n_levels
        vals = np.concatenate([l.values() for l in original.levels])
        eb_abs = 1e-3 * (vals.max() - vals.min())
        for a, b in zip(original.levels, restored.levels):
            assert np.array_equal(a.mask, b.mask)
            assert np.max(np.abs(a.values() - b.values())) <= eb_abs * 1.001

    def test_batch_matches_single_compress_bitwise(self, dataset_file, tmp_path):
        from repro.engine import BatchArchive
        from repro.core.container import CompressedDataset

        single = tmp_path / "single.tac"
        archive = tmp_path / "batch.rpbt"
        assert main([
            "compress", str(dataset_file), "-o", str(single), "--eb", "1e-3",
        ]) == 0
        assert main([
            "batch", str(dataset_file), "-o", str(archive),
            "--eb", "1e-3", "--workers", "2",
        ]) == 0
        entry = BatchArchive.load(archive).get("z10/baryon_density/tac")
        assert entry.to_bytes() == CompressedDataset.from_bytes(
            single.read_bytes()
        ).to_bytes()

    def test_decompress_multi_entry_needs_key(self, dataset_file, second_file, tmp_path, capsys):
        archive = tmp_path / "batch.rpbt"
        assert main([
            "batch", str(dataset_file), str(second_file), "-o", str(archive),
        ]) == 0
        capsys.readouterr()
        assert main(["decompress", str(archive), "-o", str(tmp_path / "x.npz")]) == 2
        assert "--key" in capsys.readouterr().err

    def test_decompress_single_entry_key_optional(self, dataset_file, tmp_path):
        archive = tmp_path / "one.rpbt"
        assert main(["batch", str(dataset_file), "-o", str(archive)]) == 0
        out = tmp_path / "back.npz"
        assert main(["decompress", str(archive), "-o", str(out)]) == 0
        assert load_dataset(out).name == "Run1_Z10"

    def test_codecs_lists_registry(self, capsys):
        assert main(["codecs"]) == 0
        out = capsys.readouterr().out
        for name in ("tac", "tac-hybrid", "1d", "zmesh", "3d"):
            assert name in out


class TestExperimentsCommand:
    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out and "ablation_predictor" in out

    def test_run_one(self, capsys):
        assert main(["experiments", "fig07", "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "OpST" in out or "opst" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err
