"""Unit tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.amr.io import load_dataset
from repro.cli import main


@pytest.fixture
def dataset_file(tmp_path):
    path = tmp_path / "z10.npz"
    code = main(["make", "Run1_Z10", "-o", str(path), "--scale", "8"])
    assert code == 0
    return path


class TestMakeInfo:
    def test_make_writes_loadable_dataset(self, dataset_file):
        ds = load_dataset(dataset_file)
        assert ds.name == "Run1_Z10"
        ds.validate()

    def test_make_rejects_unknown_dataset(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["make", "NotADataset", "-o", str(tmp_path / "x.npz")])

    def test_info_prints_summary(self, dataset_file, capsys):
        assert main(["info", str(dataset_file)]) == 0
        out = capsys.readouterr().out
        assert "Run1_Z10" in out
        assert "level 0" in out and "level 1" in out
        assert "density" in out

    def test_make_with_field_and_seed(self, tmp_path):
        path = tmp_path / "temp.npz"
        assert main([
            "make", "Run2_T2", "-o", str(path), "--scale", "8",
            "--field", "temperature", "--seed", "5",
        ]) == 0
        assert load_dataset(path).field == "temperature"


class TestCompressDecompress:
    @pytest.mark.parametrize("method", ["tac", "1d", "zmesh", "3d"])
    def test_roundtrip_every_method(self, dataset_file, tmp_path, method, capsys):
        archive = tmp_path / f"{method}.tac"
        restored_path = tmp_path / f"{method}.npz"
        assert main([
            "compress", str(dataset_file), "-o", str(archive),
            "--eb", "1e-3", "--method", method,
        ]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out
        assert main(["decompress", str(archive), "-o", str(restored_path)]) == 0

        original = load_dataset(dataset_file)
        restored = load_dataset(restored_path)
        assert restored.n_levels == original.n_levels
        for a, b in zip(original.levels, restored.levels):
            assert np.array_equal(a.mask, b.mask)
            vals = np.concatenate([l.values() for l in original.levels])
            eb_abs = 1e-3 * (vals.max() - vals.min())
            assert np.max(np.abs(a.values() - b.values())) <= eb_abs * 1.001

    def test_per_level_scales(self, dataset_file, tmp_path):
        archive = tmp_path / "scaled.tac"
        assert main([
            "compress", str(dataset_file), "-o", str(archive),
            "--eb", "1e-3", "--level-scale", "3", "1",
        ]) == 0

    def test_lorenzo_predictor_option(self, dataset_file, tmp_path):
        archive = tmp_path / "lor.tac"
        assert main([
            "compress", str(dataset_file), "-o", str(archive),
            "--predictor", "lorenzo",
        ]) == 0

    def test_hybrid_method(self, dataset_file, tmp_path):
        archive = tmp_path / "hyb.tac"
        assert main([
            "compress", str(dataset_file), "-o", str(archive),
            "--method", "tac-hybrid",
        ]) == 0

    def test_decompress_garbage_fails_cleanly(self, tmp_path):
        bad = tmp_path / "bad.tac"
        bad.write_bytes(b"junk")
        with pytest.raises(ValueError):
            main(["decompress", str(bad), "-o", str(tmp_path / "out.npz")])


class TestBatchCommand:
    @pytest.fixture
    def second_file(self, tmp_path):
        path = tmp_path / "t2.npz"
        assert main(["make", "Run2_T2", "-o", str(path), "--scale", "16"]) == 0
        return path

    def test_batch_compress_info_extract(self, dataset_file, second_file, tmp_path, capsys):
        archive = tmp_path / "batch.rpbt"
        assert main([
            "batch", str(dataset_file), str(second_file), "-o", str(archive),
            "--eb", "1e-3", "--workers", "4", "--level-workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out and "ratio" in out

        assert main(["info", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "batch archive" in out and "z10/baryon_density/tac" in out

        restored_path = tmp_path / "back.npz"
        assert main([
            "decompress", str(archive), "-o", str(restored_path),
            "--key", "z10/baryon_density/tac",
        ]) == 0
        original = load_dataset(dataset_file)
        restored = load_dataset(restored_path)
        assert restored.n_levels == original.n_levels
        vals = np.concatenate([l.values() for l in original.levels])
        eb_abs = 1e-3 * (vals.max() - vals.min())
        for a, b in zip(original.levels, restored.levels):
            assert np.array_equal(a.mask, b.mask)
            assert np.max(np.abs(a.values() - b.values())) <= eb_abs * 1.001

    def test_batch_matches_single_compress_bitwise(self, dataset_file, tmp_path):
        from repro.engine import BatchArchive
        from repro.core.container import CompressedDataset

        single = tmp_path / "single.tac"
        archive = tmp_path / "batch.rpbt"
        assert main([
            "compress", str(dataset_file), "-o", str(single), "--eb", "1e-3",
        ]) == 0
        assert main([
            "batch", str(dataset_file), "-o", str(archive),
            "--eb", "1e-3", "--workers", "2",
        ]) == 0
        entry = BatchArchive.load(archive).get("z10/baryon_density/tac")
        assert entry.to_bytes() == CompressedDataset.from_bytes(
            single.read_bytes()
        ).to_bytes()

    def test_decompress_multi_entry_needs_key(self, dataset_file, second_file, tmp_path, capsys):
        archive = tmp_path / "batch.rpbt"
        assert main([
            "batch", str(dataset_file), str(second_file), "-o", str(archive),
        ]) == 0
        capsys.readouterr()
        assert main(["decompress", str(archive), "-o", str(tmp_path / "x.npz")]) == 2
        assert "--key" in capsys.readouterr().err

    def test_decompress_single_entry_key_optional(self, dataset_file, tmp_path):
        archive = tmp_path / "one.rpbt"
        assert main(["batch", str(dataset_file), "-o", str(archive)]) == 0
        out = tmp_path / "back.npz"
        assert main(["decompress", str(archive), "-o", str(out)]) == 0
        assert load_dataset(out).name == "Run1_Z10"


class TestShardedBatchCommand:
    @pytest.fixture
    def second_file(self, tmp_path):
        path = tmp_path / "t2.npz"
        assert main(["make", "Run2_T2", "-o", str(path), "--scale", "16"]) == 0
        return path

    def test_streamed_batch_writes_head_and_shards(
        self, dataset_file, second_file, tmp_path, capsys
    ):
        head = tmp_path / "batch.rpbt"
        assert main([
            "batch", str(dataset_file), str(second_file), "-o", str(head),
            "--eb", "1e-3", "--workers", "2", "--stream", "--shard-size", "1K",
        ]) == 0
        out = capsys.readouterr().out
        assert "payload shard(s)" in out and "(head)" in out
        shards = sorted(tmp_path.glob("batch.shard-*.rpsh"))
        assert len(shards) == 2  # one entry per 1K shard at this scale

        assert main(["info", str(head)]) == 0
        out = capsys.readouterr().out
        assert "sharded batch archive" in out and "crc32" in out

        assert main(["inspect", str(head)]) == 0
        out = capsys.readouterr().out
        assert "batch archive v3" in out
        assert "shard batch.shard-0000.rpsh" in out

    def test_streamed_entries_bitwise_match_monolithic(self, dataset_file, tmp_path):
        from repro.engine import BatchArchive

        mono = tmp_path / "mono.rpbt"
        head = tmp_path / "sharded.rpbt"
        assert main(["batch", str(dataset_file), "-o", str(mono), "--eb", "1e-3"]) == 0
        assert main([
            "batch", str(dataset_file), "-o", str(head), "--eb", "1e-3", "--stream",
        ]) == 0
        a = BatchArchive.load(mono)
        b = BatchArchive.load(head)
        assert a.keys() == b.keys()
        for key in a.keys():
            assert a.get(key).parts == b.get(key).parts

    def test_decompress_and_extract_from_sharded(self, dataset_file, tmp_path, capsys):
        head = tmp_path / "sharded.rpbt"
        assert main([
            "batch", str(dataset_file), "-o", str(head), "--eb", "1e-3", "--stream",
        ]) == 0
        capsys.readouterr()
        back = tmp_path / "back.npz"
        assert main(["decompress", str(head), "-o", str(back)]) == 0
        restored = load_dataset(back)
        assert restored.name == "Run1_Z10"
        extracted = tmp_path / "lvl.npz"
        assert main([
            "extract", str(head), "--key", "z10/baryon_density/tac",
            "--level", "1", "-o", str(extracted),
        ]) == 0
        out = capsys.readouterr().out
        assert "parts read" in out

    def test_bad_shard_size_rejected(self, dataset_file, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main([
                "batch", str(dataset_file), "-o", str(tmp_path / "x.rpbt"),
                "--shard-size", "zero",
            ])
        assert "invalid size" in capsys.readouterr().err

    def test_codecs_lists_registry(self, capsys):
        assert main(["codecs"]) == 0
        out = capsys.readouterr().out
        for name in ("tac", "tac-hybrid", "1d", "zmesh", "3d"):
            assert name in out


class TestExtractCommand:
    @pytest.fixture
    def archive(self, dataset_file, tmp_path):
        path = tmp_path / "z10.tac"
        assert main([
            "compress", str(dataset_file), "-o", str(path), "--eb", "1e-3",
        ]) == 0
        return path

    def test_extract_level_matches_full_decompress(self, dataset_file, archive, tmp_path, capsys):
        out = tmp_path / "lvl0.npz"
        assert main([
            "extract", str(archive), "-o", str(out), "--level", "0", "--workers", "2",
        ]) == 0
        stdout = capsys.readouterr().out
        assert "parts read" in stdout

        full = tmp_path / "full.npz"
        assert main(["decompress", str(archive), "-o", str(full)]) == 0
        reference = load_dataset(full)
        with np.load(out) as arrays:
            data = arrays["data_0"]
            size = int(np.prod(data.shape))
            mask = np.unpackbits(arrays["mask_0"])[:size].astype(bool).reshape(data.shape)
        assert np.array_equal(data, reference.levels[0].data)
        assert np.array_equal(mask, reference.levels[0].mask)

    def test_extract_region_matches_sliced_full(self, archive, tmp_path):
        out = tmp_path / "roi.npz"
        assert main([
            "extract", str(archive), "-o", str(out),
            "--level", "0", "--region", "2:10,0:7,5:16",
        ]) == 0
        full = tmp_path / "full.npz"
        assert main(["decompress", str(archive), "-o", str(full)]) == 0
        reference = load_dataset(full)
        with np.load(out) as arrays:
            data = arrays["data"]
            assert int(arrays["level"]) == 0
        assert np.array_equal(
            data, reference.levels[0].data[2:10, 0:7, 5:16]
        )

    def test_extract_from_batch_archive_key(self, dataset_file, tmp_path):
        batch = tmp_path / "b.rpbt"
        assert main(["batch", str(dataset_file), "-o", str(batch), "--eb", "1e-3"]) == 0
        out = tmp_path / "lvl1.npz"
        assert main([
            "extract", str(batch), "-o", str(out),
            "--key", "z10/baryon_density/tac", "--level", "1",
        ]) == 0
        assert "data_1" in np.load(out)

    def test_extract_region_needs_one_level(self, archive, tmp_path, capsys):
        assert main([
            "extract", str(archive), "-o", str(tmp_path / "x.npz"),
            "--region", "0:4,0:4,0:4",
        ]) == 2
        assert "--level" in capsys.readouterr().err

    def test_extract_bad_region_spec(self, archive, tmp_path, capsys):
        assert main([
            "extract", str(archive), "-o", str(tmp_path / "x.npz"),
            "--level", "0", "--region", "0:4,0:4",
        ]) == 2
        assert "region" in capsys.readouterr().err

    def test_decompress_with_workers_matches_serial(self, archive, tmp_path):
        serial = tmp_path / "s.npz"
        parallel = tmp_path / "p.npz"
        assert main(["decompress", str(archive), "-o", str(serial)]) == 0
        assert main([
            "decompress", str(archive), "-o", str(parallel), "--workers", "4",
        ]) == 0
        a = load_dataset(serial)
        b = load_dataset(parallel)
        for la, lb in zip(a.levels, b.levels):
            assert np.array_equal(la.data, lb.data)


class TestInspectCommand:
    def test_inspect_single_blob(self, dataset_file, tmp_path, capsys):
        archive = tmp_path / "z10.tac"
        assert main([
            "compress", str(dataset_file), "-o", str(archive), "--eb", "1e-3",
        ]) == 0
        capsys.readouterr()
        assert main(["inspect", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "container v2" in out
        assert "strategy" in out
        assert "mask/L0" in out

    def test_inspect_batch_archive(self, dataset_file, tmp_path, capsys):
        batch = tmp_path / "b.rpbt"
        assert main(["batch", str(dataset_file), "-o", str(batch)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(batch)]) == 0
        out = capsys.readouterr().out
        assert "batch archive v2" in out
        assert "z10/baryon_density/tac" in out

    def test_inspect_unknown_key(self, dataset_file, tmp_path, capsys):
        batch = tmp_path / "b.rpbt"
        assert main(["batch", str(dataset_file), "-o", str(batch)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(batch), "--key", "nope"]) == 2
        assert "no entry" in capsys.readouterr().err


class TestServeCommand:
    @pytest.fixture
    def archive_file(self, dataset_file, tmp_path):
        path = tmp_path / "batch.rpbt"
        assert main([
            "batch", str(dataset_file), "-o", str(path), "--method", "tac", "--stream",
        ]) == 0
        return path

    def test_serve_reports_latency_and_cache(self, archive_file, tmp_path, capsys):
        stats_path = tmp_path / "serve.json"
        assert main([
            "serve", str(archive_file), "--requests", "16", "--rois", "2",
            "--threads", "2", "--seed", "1", "--json", str(stats_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "served 16 requests" in out
        assert "cache hit rate" in out
        report = json.loads(stats_path.read_text())
        assert report["n_requests"] == 16
        assert report["cache"]["hit_rate"] > 0  # overlapping pool reuses bricks
        assert report["latency_p50"] <= report["latency_p99"]
        assert report["bytes_served"] > 0

    def test_serve_cache_disabled(self, archive_file, capsys):
        assert main([
            "serve", str(archive_file), "--requests", "4", "--rois", "2",
            "--cache-bytes", "0",
        ]) == 0
        assert "cache hit rate off" in capsys.readouterr().out

    def test_serve_unknown_key_fails(self, archive_file, capsys):
        assert main(["serve", str(archive_file), "--key", "nope"]) == 2
        assert "no entry" in capsys.readouterr().err

    def test_serve_bad_roi_frac_fails(self, archive_file, capsys):
        assert main(["serve", str(archive_file), "--roi-frac", "1.5"]) == 2
        assert "roi-frac" in capsys.readouterr().err

    def test_serve_chaos_transient_faults_absorbed(self, archive_file, tmp_path, capsys):
        stats_path = tmp_path / "chaos.json"
        assert main([
            "serve", str(archive_file), "--requests", "8", "--rois", "2",
            "--chaos", "oserror:p=0.2,times=4", "--chaos-seed", "3",
            "--json", str(stats_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos:" in out
        report = json.loads(stats_path.read_text())
        assert report["chaos"]["spec"] == "oserror:p=0.2,times=4"
        assert report["chaos"]["n_fired"] >= 1
        assert report["n_failed"] == 0  # retries absorbed every transient

    def test_serve_chaos_degraded_bitflip_reports_fill_boxes(
        self, archive_file, tmp_path, capsys
    ):
        stats_path = tmp_path / "degr.json"
        assert main([
            "serve", str(archive_file), "--requests", "4", "--rois", "1",
            "--cache-bytes", "0", "--level", "0",
            "--chaos", "bitflip:match=*/L0/b*,times=1",
            "--degraded", "--deadline", "30",
            "--json", str(stats_path),
        ]) == 0
        report = json.loads(stats_path.read_text())
        assert report["n_failed"] == 0
        if report["chaos"]["n_fired"]:  # the ROI touched the target brick
            assert report["degraded_requests"] >= 1
            assert report["fill_boxes"] >= 1

    def test_serve_bad_chaos_spec_fails(self, archive_file, capsys):
        assert main(["serve", str(archive_file), "--chaos", "segfault:p=1"]) == 2
        assert "bad --chaos spec" in capsys.readouterr().err


class TestScrubCommand:
    @pytest.fixture
    def archive_file(self, dataset_file, tmp_path):
        path = tmp_path / "batch.rpbt"
        assert main([
            "batch", str(dataset_file), "-o", str(path), "--method", "tac", "--stream",
        ]) == 0
        return path

    def test_scrub_clean_archive_exits_zero(self, archive_file, tmp_path, capsys):
        report_path = tmp_path / "scrub.json"
        assert main(["scrub", str(archive_file), "--json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "scrub clean" in out
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert all(row["ok"] for row in report["shards"])
        assert all(not row["bad"] for row in report["entries"])
        assert all(row["has_part_crcs"] for row in report["entries"])  # v4

    def test_scrub_detects_flipped_bit_and_exits_one(
        self, archive_file, tmp_path, capsys
    ):
        shard = next(archive_file.parent.glob("*.rpsh"))
        blob = bytearray(shard.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        shard.write_bytes(bytes(blob))
        report_path = tmp_path / "scrub.json"
        assert main(["scrub", str(archive_file), "--json", str(report_path)]) == 1
        captured = capsys.readouterr()
        assert "BAD " in captured.out
        assert "scrub found damage" in captured.err
        report = json.loads(report_path.read_text())
        assert report["ok"] is False
        assert any(not row["ok"] for row in report["shards"])
        assert any(row["bad"] for row in report["entries"])

    def test_scrub_v3_archive_notes_missing_part_crcs(
        self, dataset_file, tmp_path, capsys
    ):
        from repro.core.tac import TACCompressor
        from repro.engine.archive import BatchArchive

        dataset = load_dataset(dataset_file)
        comp = TACCompressor().compress(dataset, 1e-3, mode="rel")
        archive = BatchArchive()
        archive.add("d/tac", comp)
        head = tmp_path / "v3.rpbt"
        archive.save_sharded(head, container_version=3)
        assert main(["scrub", str(head)]) == 0
        assert "no per-part CRCs" in capsys.readouterr().out

    def test_scrub_unknown_key_fails(self, archive_file, capsys):
        assert main(["scrub", str(archive_file), "--key", "nope"]) == 2
        assert "no entry" in capsys.readouterr().err


class TestVerifyFlag:
    @pytest.fixture
    def archive_file(self, dataset_file, tmp_path):
        path = tmp_path / "batch.rpbt"
        assert main([
            "batch", str(dataset_file), "-o", str(path), "--method", "tac", "--stream",
        ]) == 0
        return path

    def test_info_verify_clean(self, archive_file, capsys):
        assert main(["info", str(archive_file), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "shard(s) passed" in out

    def test_inspect_verify_clean(self, archive_file, capsys):
        assert main(["inspect", str(archive_file), "--verify"]) == 0
        assert "shard(s) passed" in capsys.readouterr().out

    def test_info_verify_detects_damage_checks_all_shards(
        self, archive_file, capsys
    ):
        for shard in archive_file.parent.glob("*.rpsh"):
            blob = bytearray(shard.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            shard.write_bytes(bytes(blob))
        assert main(["info", str(archive_file), "--verify"]) == 1
        out = capsys.readouterr().out
        # Every shard is reported, not just the first failure.
        assert out.count("FAILED") == len(list(archive_file.parent.glob("*.rpsh")))

    def test_verify_on_npz_is_a_usage_error(self, dataset_file, capsys):
        assert main(["info", str(dataset_file), "--verify"]) == 2
        assert "--verify" in capsys.readouterr().err


class TestExperimentsCommand:
    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out and "ablation_predictor" in out

    def test_run_one(self, capsys):
        assert main(["experiments", "fig07", "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "OpST" in out or "opst" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err


class TestProfileFlag:
    @pytest.fixture
    def second_file(self, tmp_path):
        path = tmp_path / "t2.npz"
        assert main(["make", "Run2_T2", "-o", str(path), "--scale", "16"]) == 0
        return path

    def test_compress_profile_prints_stage_breakdown(self, dataset_file, tmp_path, capsys):
        archive = tmp_path / "prof.tac"
        assert main([
            "compress", str(dataset_file), "-o", str(archive),
            "--eb", "1e-3", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "profile" in out
        # TAC's compress pipeline times at least these stages.
        assert "preprocess" in out
        assert "compress" in out
        assert "% " in out or "%" in out

    def test_batch_profile_aggregates_jobs(self, dataset_file, second_file, tmp_path, capsys):
        out_path = tmp_path / "prof.batch"
        assert main([
            "batch", str(dataset_file), str(second_file),
            "-o", str(out_path), "--eb", "1e-3", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "profile" in out
        assert "compress" in out

    def test_no_profile_by_default(self, dataset_file, tmp_path, capsys):
        archive = tmp_path / "noprof.tac"
        assert main(["compress", str(dataset_file), "-o", str(archive)]) == 0
        assert "profile     :" not in capsys.readouterr().out


class TestLintCommand:
    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert rule_id in out

    def test_lint_repo_is_clean(self, capsys):
        # The committed tree must lint clean against the committed
        # baseline; CI's static-analysis job enforces the same gate.
        assert main(["lint"]) == 0
        assert "0 new" in capsys.readouterr().out
