"""Unit tests for ghost-shell padding and zero filling."""

import numpy as np
import pytest

import zlib

from repro.core.gsp import (
    BrickTable,
    brick_boxes,
    bricks_in_box,
    deserialize_brick_table,
    gsp_pad,
    serialize_brick_table,
    zero_fill,
)
from tests.helpers import random_mask, smooth_cube


def level_with_hole(n=12, block=4, value=5.0):
    """Full grid except one empty unit block in the middle."""
    mask = np.ones((n, n, n), dtype=bool)
    mask[4:8, 4:8, 4:8] = False
    data = np.full((n, n, n), np.float32(value))
    data[~mask] = 0
    return data, mask


class TestGSP:
    def test_valid_cells_untouched(self):
        data, mask = level_with_hole()
        result = gsp_pad(data, mask, 4)
        crop = result.crop()
        assert np.array_equal(crop[mask], data[mask])

    def test_hole_filled_with_neighbour_average(self):
        data, mask = level_with_hole(value=5.0)
        result = gsp_pad(data, mask, 4)
        hole = result.crop()[4:8, 4:8, 4:8]
        # All six neighbours carry 5.0, so every pad contribution is 5.0.
        assert np.allclose(hole, 5.0)

    def test_pad_mask_marks_hole_only(self):
        data, mask = level_with_hole()
        result = gsp_pad(data, mask, 4)
        pad = result.crop(result.pad_mask)
        assert pad[4:8, 4:8, 4:8].all()
        assert not pad[mask].any()

    def test_n_padded_blocks(self):
        data, mask = level_with_hole()
        assert gsp_pad(data, mask, 4).n_padded_blocks == 1

    def test_isolated_empty_block_stays_zero(self):
        # An empty block with no non-empty neighbours must remain zero.
        n, block = 12, 4
        mask = np.zeros((n, n, n), dtype=bool)
        mask[:4, :4, :4] = True  # single occupied corner block
        data = np.where(mask, np.float32(3.0), np.float32(0))
        result = gsp_pad(data, mask, block)
        # The far corner block touches no occupied block.
        far = result.padded[8:12, 8:12, 8:12]
        assert np.all(far == 0)

    def test_face_neighbour_gets_ghost(self):
        n, block = 8, 4
        mask = np.zeros((n, n, n), dtype=bool)
        mask[:4, :4, :4] = True
        data = np.where(mask, np.float32(2.0), np.float32(0))
        result = gsp_pad(data, mask, block)
        # The x-face neighbour of the occupied block is padded with ~2.0.
        ghost = result.padded[4:8, :4, :4]
        assert np.allclose(ghost[ghost != 0], 2.0)
        assert (ghost != 0).any()

    def test_averaging_of_two_contributions(self):
        # Empty block flanked by value-2 and value-4 blocks along x.
        n, block = 12, 4
        mask = np.ones((n, n, n), dtype=bool)
        mask[4:8, :, :] = False
        data = np.zeros((n, n, n), dtype=np.float32)
        data[:4] = 2.0
        data[8:] = 4.0
        result = gsp_pad(data, mask, block, pad_layers=None, avg_layers=1)
        middle = result.padded[4:8]
        # Full-depth padding from both faces overlaps everywhere: avg = 3.
        assert np.allclose(middle, 3.0)

    def test_thin_pad_layers(self):
        data, mask = level_with_hole()
        result = gsp_pad(data, mask, 4, pad_layers=1)
        hole = result.crop()[4:8, 4:8, 4:8]
        # Only the outermost shell of the hole is padded.
        assert np.allclose(hole[0], 5.0)
        assert np.all(hole[1:3, 1:3, 1:3] == 0)

    def test_partial_blocks_use_valid_cells_only(self, rng):
        # A neighbour block that is only partially valid: the ghost value
        # must average only its valid cells.
        n, block = 8, 4
        mask = np.zeros((n, n, n), dtype=bool)
        mask[:4, :4, :4] = True
        mask[0, 0, 0] = True
        data = np.zeros((n, n, n), dtype=np.float32)
        data[mask] = 7.0
        mask_partial = mask.copy()
        mask_partial[1:4, :, :] = False  # boundary slab partially valid
        data_partial = np.where(mask_partial, data, np.float32(0))
        result = gsp_pad(data_partial, mask_partial, block)
        ghosts = result.padded[result.pad_mask]
        if ghosts.size:
            assert np.allclose(ghosts[ghosts != 0], 7.0)

    def test_rejects_bad_args(self):
        data, mask = level_with_hole()
        with pytest.raises(ValueError):
            gsp_pad(data, mask, 4, pad_layers=0)
        with pytest.raises(ValueError):
            gsp_pad(data, mask.reshape(12, 12, 12)[:, :, :6], 4)

    def test_fully_masked_level_is_noop(self):
        data = smooth_cube(8)
        mask = np.ones((8, 8, 8), dtype=bool)
        result = gsp_pad(data, mask, 4)
        assert np.array_equal(result.crop(), data)
        assert result.n_padded_blocks == 0

    def test_random_masks_never_touch_valid_cells(self, rng):
        for seed in range(3):
            mask = random_mask((16, 16, 16), 0.7, seed=seed, block=4)
            data = np.where(mask, smooth_cube(16), np.float32(0))
            result = gsp_pad(data, mask, 4)
            assert np.array_equal(result.crop()[mask], data[mask])
            # Ghost values are bounded by the data range (means of values).
            ghosts = result.padded[result.pad_mask]
            if ghosts.size:
                assert ghosts.max() <= data.max() + 1e-5
                assert ghosts.min() >= data.min() - 1e-5


class TestZeroFill:
    def test_identity_on_masked_data(self):
        data, mask = level_with_hole()
        result = zero_fill(data, mask, 4)
        assert np.array_equal(result.crop(), data)
        assert result.n_padded_blocks == 0
        assert not result.pad_mask.any()

    def test_pads_grid_to_block_multiple(self):
        mask = np.ones((5, 5, 5), dtype=bool)
        data = np.ones((5, 5, 5), dtype=np.float32)
        result = zero_fill(data, mask, 4)
        assert result.padded.shape == (8, 8, 8)
        assert result.crop().shape == (5, 5, 5)


class TestGSPCompressibility:
    def test_gsp_reduces_boundary_cliffs(self):
        # The variance of the first difference across the hole boundary
        # should drop when ghosts replace zeros.
        n, block = 16, 4
        mask = random_mask((n, n, n), 0.8, seed=2, block=4)
        base = smooth_cube(n) + np.float32(10.0)  # offset so zeros are cliffs
        data = np.where(mask, base, np.float32(0))
        zf = zero_fill(data, mask, block).padded
        gsp = gsp_pad(data, mask, block).padded
        def roughness(f):
            return sum(float(np.abs(np.diff(f, axis=a)).sum()) for a in range(3))
        assert roughness(gsp) < roughness(zf)


class TestBrickGeometry:
    """The regular brick tiling behind the GSP/ZF region index."""

    def test_boxes_tile_exactly(self):
        boxes = brick_boxes((10, 8, 4), 4)
        # 3 x 2 x 1 bricks, ragged on the first axis.
        assert len(boxes) == 6
        cover = np.zeros((10, 8, 4), dtype=np.int32)
        for box in boxes:
            cover[tuple(slice(lo, hi) for lo, hi in box)] += 1
        assert (cover == 1).all()

    def test_boxes_flat_c_order(self):
        boxes = brick_boxes((8, 8, 8), 4)
        assert boxes[0] == ((0, 4), (0, 4), (0, 4))
        assert boxes[1] == ((0, 4), (0, 4), (4, 8))  # z fastest
        assert boxes[2] == ((0, 4), (4, 8), (0, 4))

    def test_bricks_in_box_matches_geometry(self):
        shape = (12, 12, 12)
        boxes = brick_boxes(shape, 4)
        roi = ((2, 6), (0, 4), (5, 12))
        hit = set(bricks_in_box(shape, 4, roi).tolist())
        expected = {
            i for i, box in enumerate(boxes)
            if all(lo < r_hi and r_lo < hi for (lo, hi), (r_lo, r_hi) in zip(box, roi))
        }
        assert hit == expected
        assert hit  # the ROI really intersects something

    def test_bricks_in_box_empty_intersection(self):
        # A box entirely outside the grid (clipped away) hits nothing.
        assert bricks_in_box((8, 8, 8), 4, ((8, 9), (0, 8), (0, 8))).size == 0

    def test_eighth_domain_roi_touches_eighth_of_bricks(self):
        shape = (16, 16, 16)
        hit = bricks_in_box(shape, 4, ((0, 8), (0, 8), (0, 8)))
        assert hit.size == 8  # 2^3 of the 4^3 bricks

    def test_table_roundtrip(self):
        table = BrickTable(padded_shape=(20, 16, 12), orig_shape=(18, 15, 12), brick_size=8)
        back = deserialize_brick_table(serialize_brick_table(table))
        assert back == table
        assert back.grid() == (3, 2, 2)
        assert back.n_bricks() == 12
        assert back.boxes() == brick_boxes((20, 16, 12), 8)

    def test_table_rejects_corrupt_payloads(self):
        table = BrickTable(padded_shape=(8, 8, 8), orig_shape=(8, 8, 8), brick_size=4)
        payload = serialize_brick_table(table)
        with pytest.raises(ValueError, match="length"):
            deserialize_brick_table(zlib.compress(zlib.decompress(payload) + b"x"))
        with pytest.raises(ValueError, match="version"):
            deserialize_brick_table(
                zlib.compress(b"\xff\xff" + zlib.decompress(payload)[2:])
            )

    def test_rejects_bad_brick_size(self):
        with pytest.raises(ValueError, match="positive"):
            brick_boxes((8, 8, 8), 0)
        with pytest.raises(ValueError, match="positive"):
            bricks_in_box((8, 8, 8), -2, ((0, 4), (0, 4), (0, 4)))
