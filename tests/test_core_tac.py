"""Unit + integration tests for the TAC hybrid compressor."""

import numpy as np
import pytest

from repro.amr.reconstruct import max_level_errors
from repro.core.container import CompressedDataset
from repro.core.density import Strategy
from repro.core.tac import TACCompressor, TACConfig, default_unit_block
from tests.helpers import assert_error_bounded, two_level_dataset


@pytest.fixture(scope="module")
def tac() -> TACCompressor:
    return TACCompressor()


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = TACConfig()
        assert cfg.t1 == 0.50 and cfg.t2 == 0.60

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            TACConfig(t1=0.7, t2=0.6)

    def test_rejects_conflicting_init(self):
        with pytest.raises(TypeError):
            TACCompressor(TACConfig(), unit_block=8)

    def test_default_unit_block_scaling(self):
        assert default_unit_block(64) == 4
        assert default_unit_block(128) == 8
        assert default_unit_block(512) == 16  # clamped at 16
        assert default_unit_block(16) == 4    # clamped at 4

    def test_brick_size_default_and_validation(self):
        from repro.core.gsp import DEFAULT_BRICK_SIZE

        assert TACConfig().brick_size == DEFAULT_BRICK_SIZE
        assert TACConfig(brick_size=None).brick_size is None  # legacy layout
        with pytest.raises(ValueError, match="brick_size"):
            TACConfig(brick_size=0)
        with pytest.raises(ValueError, match="brick_size"):
            TACConfig(brick_size=-8)


class TestRoundTrip:
    def test_error_bound_per_level(self, tac, z10_small):
        comp = tac.compress(z10_small, 1e-3, mode="rel")
        recon = tac.decompress(comp)
        errs = max_level_errors(z10_small, recon)
        for err, meta in zip(errs, comp.meta["levels"]):
            assert err <= meta["eb_abs"] * 1.001 + 1e-9

    def test_strategies_follow_density_filter(self, tac, z10_small):
        comp = tac.compress(z10_small, 1e-3, mode="rel")
        strategies = [m["strategy"] for m in comp.meta["levels"]]
        assert strategies == ["opst", "gsp"]  # 23% -> OpST, 77% -> GSP

    def test_three_level_dataset(self, tac, t3_small):
        comp = tac.compress(t3_small, 1e-3, mode="rel")
        recon = tac.decompress(comp)
        errs = max_level_errors(t3_small, recon)
        ebs = [m["eb_abs"] for m in comp.meta["levels"]]
        for err, eb in zip(errs, ebs):
            assert err <= eb * 1.001 + 1e-9

    def test_masks_roundtrip_inside_blob(self, tac, z10_small):
        comp = tac.compress(z10_small, 1e-3, mode="rel")
        recon = tac.decompress(comp)  # no structure passed: masks from blob
        for a, b in zip(z10_small.levels, recon.levels):
            assert np.array_equal(a.mask, b.mask)

    def test_structure_fallback_when_masks_excluded(self, z10_small):
        tac = TACCompressor(TACConfig(store_masks=False))
        comp = tac.compress(z10_small, 1e-3, mode="rel")
        assert not any(k.startswith("mask/") for k in comp.parts)
        with pytest.raises(ValueError, match="structure"):
            tac.decompress(comp)
        recon = tac.decompress(comp, structure=z10_small)
        errs = max_level_errors(z10_small, recon)
        assert max(errs) <= comp.meta["levels"][0]["eb_abs"] * 1.01

    def test_abs_mode(self, tac, z10_small):
        comp = tac.compress(z10_small, 1e8, mode="abs")
        recon = tac.decompress(comp)
        assert max(max_level_errors(z10_small, recon)) <= 1e8 * 1.001

    def test_invalid_cells_zeroed(self, tac, z10_small):
        recon = tac.decompress(tac.compress(z10_small, 1e-3, mode="rel"))
        for lvl in recon.levels:
            assert np.all(lvl.data[~lvl.mask] == 0)

    def test_container_serialization_roundtrip(self, tac, z10_small):
        comp = tac.compress(z10_small, 1e-3, mode="rel")
        blob = comp.to_bytes()
        restored = CompressedDataset.from_bytes(blob)
        recon = tac.decompress(restored)
        errs = max_level_errors(z10_small, recon)
        assert max(errs) <= max(m["eb_abs"] for m in comp.meta["levels"]) * 1.001


class TestPerLevelBounds:
    def test_scales_apply(self, tac, z10_small):
        comp = tac.compress(z10_small, 1e-3, mode="rel", per_level_scale=[3, 1])
        ebs = [m["eb_abs"] for m in comp.meta["levels"]]
        assert ebs[0] == pytest.approx(3 * ebs[1])
        recon = tac.decompress(comp)
        errs = max_level_errors(z10_small, recon)
        for err, eb in zip(errs, ebs):
            assert err <= eb * 1.001 + 1e-9

    def test_wrong_length_rejected(self, tac, z10_small):
        with pytest.raises(ValueError, match="entries"):
            tac.compress(z10_small, 1e-3, per_level_scale=[1.0])

    def test_non_positive_rejected(self, tac, z10_small):
        with pytest.raises(ValueError, match="positive"):
            tac.compress(z10_small, 1e-3, per_level_scale=[1.0, 0.0])

    def test_looser_fine_bound_smaller_payload(self, tac, z10_small):
        even = tac.compress(z10_small, 1e-3, mode="rel")
        skewed = tac.compress(z10_small, 1e-3, mode="rel", per_level_scale=[4, 1])
        assert skewed.compressed_bytes() < even.compressed_bytes()


class TestForcedStrategies:
    @pytest.mark.parametrize(
        "strategy", [Strategy.NAST, Strategy.OPST, Strategy.AKDTREE, Strategy.GSP, Strategy.ZF]
    )
    def test_every_strategy_roundtrips(self, strategy, z10_small):
        tac = TACCompressor(TACConfig(force_strategy=strategy))
        comp = tac.compress(z10_small, 1e-3, mode="rel")
        recon = tac.decompress(comp)
        errs = max_level_errors(z10_small, recon)
        ebs = [m["eb_abs"] for m in comp.meta["levels"]]
        for err, eb in zip(errs, ebs):
            assert err <= eb * 1.001 + 1e-9
        assert all(m["strategy"] == strategy.value for m in comp.meta["levels"])


class TestAdaptiveBaseline:
    def test_delegates_on_dense_finest(self, z3_small):
        tac = TACCompressor(TACConfig(adaptive_baseline=True))
        comp = tac.compress(z3_small, 1e-3, mode="rel")  # finest 64% >= T2
        assert comp.meta.get("delegated") == "baseline_3d"
        assert comp.method == "tac"
        recon = tac.decompress(comp)
        errs = max_level_errors(z3_small, recon)
        assert max(errs) <= comp.meta["level_ebs"][0] * 1.001

    def test_no_delegation_on_sparse_finest(self, z10_small):
        tac = TACCompressor(TACConfig(adaptive_baseline=True))
        comp = tac.compress(z10_small, 1e-3, mode="rel")  # finest 23% < T2
        assert "delegated" not in comp.meta

    def test_delegation_rejects_per_level_scales(self, z3_small):
        tac = TACCompressor(TACConfig(adaptive_baseline=True))
        with pytest.raises(ValueError, match="per-level"):
            tac.compress(z3_small, 1e-3, per_level_scale=[2, 1])


class TestEdgeCases:
    def test_empty_level_handled(self):
        ds = two_level_dataset(n=8, fine_fraction=0.25)
        # Empty the fine level entirely (coarse takes over).
        from repro.amr.hierarchy import AMRDataset, AMRLevel

        fine = AMRLevel(
            data=np.zeros_like(ds.levels[0].data),
            mask=np.zeros_like(ds.levels[0].mask),
            level=0,
        )
        coarse = AMRLevel(
            data=ds.levels[1].data,
            mask=np.ones_like(ds.levels[1].mask),
            level=1,
        )
        empty_fine = AMRDataset(levels=[fine, coarse], name="empty_fine")
        tac = TACCompressor()
        comp = tac.compress(empty_fine, 1e-3, mode="rel")
        assert comp.meta["levels"][0]["strategy"] == "empty"
        recon = tac.decompress(comp)
        assert recon.levels[0].n_points() == 0
        assert_error_bounded(
            coarse.values(), recon.levels[1].values(), comp.meta["levels"][1]["eb_abs"]
        )

    def test_timings_recorded(self, z10_small):
        from repro.utils.timer import TimingRecord

        tac = TACCompressor()
        record = TimingRecord()
        tac.compress(z10_small, 1e-3, mode="rel", timings=record)
        assert record.get("preprocess") > 0
        assert record.get("compress") > 0

    def test_preprocess_only_returns_artifact(self, z10_small):
        tac = TACCompressor()
        result, seconds = tac.preprocess_only(z10_small.levels[0], Strategy.OPST)
        assert seconds >= 0
        assert result.n_blocks() > 0


class TestDecodeTableCacheReuse:
    """The Huffman decode-table LRU across one blob's many group streams."""

    def _constant_level_dataset(self):
        # Three levels, the two finest sharing one constant value: their
        # group streams quantize to identical symbol sets, so their Huffman
        # code-length tables match byte for byte and the decoder must reuse
        # the cached decode table.  Masks are 2-block-aligned so NaST(2)
        # blocks hold only valid (constant) cells.
        from repro.amr.hierarchy import AMRDataset, AMRLevel
        from repro.amr.upsample import upsample

        rng_local = np.random.default_rng(5)
        refine = rng_local.random((4, 4, 4)) < 0.5
        coarse_mask = ~refine
        owned_mid = upsample(refine, 2)
        refine_mid = upsample(refine & (rng_local.random((4, 4, 4)) < 0.5), 2)
        mid_mask = owned_mid & ~refine_mid
        fine_mask = upsample(refine_mid, 2)

        def const_level(mask, value, level):
            data = np.where(mask, np.float32(value), np.float32(0))
            return AMRLevel(data=data, mask=mask, level=level)

        ds = AMRDataset(
            levels=[
                const_level(fine_mask, 7.5, 0),
                const_level(mid_mask, 7.5, 1),
                const_level(coarse_mask, 3.0, 2),
            ],
            name="const3",
            field="test_field",
        )
        ds.validate()
        return ds

    def test_multi_level_decompress_hits_cache(self):
        from repro.sz.huffman import decode_table_cache_clear, decode_table_cache_info

        tac = TACCompressor(TACConfig(force_strategy=Strategy.NAST, unit_block=2))
        ds = self._constant_level_dataset()
        comp = tac.compress(ds, 1e-3, mode="rel")
        n_streams = sum(1 for name in comp.parts if "/g" in name or "/grid" in name)
        assert n_streams >= 2, "need multiple group streams to exercise reuse"

        decode_table_cache_clear()
        recon = tac.decompress(comp)
        info = decode_table_cache_info()
        # ≥ 1 hit per reused table: the two constant-7.5 levels share one
        # code-length table, so at most n_streams - 1 misses can occur.
        assert info.hits >= 1
        assert info.hits + info.misses >= n_streams
        assert info.misses <= n_streams - 1
        for orig, back in zip(ds.levels, recon.levels):
            assert_error_bounded(orig.values(), back.values(), comp.meta["levels"][orig.level]["eb_abs"])

    def test_repeated_decompress_is_all_hits(self, tac, z10_small):
        from repro.sz.huffman import decode_table_cache_clear, decode_table_cache_info

        comp = tac.compress(z10_small, 1e-3, mode="rel")
        first = tac.decompress(comp)
        decode_table_cache_clear()
        tac.decompress(comp)
        misses_cold = decode_table_cache_info().misses
        again = tac.decompress(comp)
        info = decode_table_cache_info()
        assert info.misses == misses_cold, "second decompress must be pure hits"
        assert info.hits >= misses_cold
        for a, b in zip(first.levels, again.levels):
            assert np.array_equal(a.data, b.data)
