"""Regenerate the golden batch-archive fixtures (both wire versions).

Run from the repo root::

    PYTHONPATH=src:. python tests/data/make_golden.py

Writes, for each container version, the archive bytes the regression test
pins and a JSON record of the expected manifest plus per-entry
decompressed-value statistics:

* ``golden_batch.rpbt`` / ``golden_batch.json`` — version 1 (the original
  length-prefixed layout; proves old stored archives stay readable);
* ``golden_batch_v2.rpbt`` / ``golden_batch_v2.json`` — version 2 (part-
  and entry-indexed layout used for lazy/partial reads);
* ``golden_batch_v3.rpbt`` + ``golden_batch_v3.shard-NNNN.rpsh`` /
  ``golden_batch_v3.json`` — version 3 (sharded streaming layout: a
  manifest-only head whose index points into payload shards, written by
  ``ShardedArchiveWriter``; the shard size is chosen so the four entries
  span two shards);
* ``golden_batch_v4.rpbt`` + ``golden_batch_v4.shard-NNNN.rpsh`` /
  ``golden_batch_v4.json`` — the same sharded construction with container
  v4 entry blobs (per-part CRC-32s in each tail index), plus
  ``golden_entry_v4.rpam``, the ``golden/tac`` entry written eagerly by
  ``CompressedDataset.to_bytes`` at ``container_version=4`` — pinning the
  integrity layout through *both* writers.

All versions differ only in framing: identical codecs, identical payload
bytes.  Only regenerate when a container version is *intentionally*
bumped — the whole point of the fixtures is that accidental format drift
fails ``tests/test_golden_format.py``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.core.tac import TACCompressor
from repro.engine import BatchArchive, CompressionEngine, CompressionJob
from tests.helpers import golden_dataset, golden_gsp_dataset

HERE = Path(__file__).parent
EB = 1e-3
MODE = "abs"
CODECS = ("tac", "1d", "zmesh", "3d")
#: Forces the four golden entries across two payload shards.
V3_SHARD_SIZE = 2048
#: Brick edge of the bricked GSP fixture: 16^3 padded level -> 4^3 bricks.
GSP_BRICK_SIZE = 4
#: ROI pinned by the GSP fixtures' partial-read expectations (1/8 domain).
GSP_ROI = (slice(0, 8), slice(0, 8), slice(0, 8))


def build_archive(container_version: int) -> bytes:
    ds = golden_dataset()
    jobs = [
        CompressionJob(ds, codec=c, error_bound=EB, mode=MODE, label=f"golden/{c}")
        for c in CODECS
    ]
    archive = CompressionEngine().run_to_archive(jobs, fixture="golden", eb=EB, mode=MODE)
    archive.version = container_version
    for comp in archive.entries.values():
        comp.container_version = container_version
    return archive.to_bytes()


def expectations(blob: bytes) -> dict:
    # Record from the canonical (serialized) form, whose entries are
    # key-sorted.
    archive = BatchArchive.from_bytes(blob)
    expected: dict = {
        "sha256": hashlib.sha256(blob).hexdigest(),
        "n_bytes": len(blob),
        "eb": EB,
        "mode": MODE,
        "keys": archive.keys(),
        "manifest": archive.manifest(),
        "decompressed": {},
    }
    for key in archive.keys():
        restored = archive.decompress(key)
        expected["decompressed"][key] = [
            {
                "level": lvl.level,
                "n_points": lvl.n_points(),
                "sum": float(lvl.values().sum(dtype=np.float64)),
                "min": float(lvl.values().min()) if lvl.n_points() else 0.0,
                "max": float(lvl.values().max()) if lvl.n_points() else 0.0,
            }
            for lvl in restored.levels
        ]
    return expected


def sharded_expectations(blob_v2: bytes, stem: str, container_version: int) -> dict:
    """Write one sharded fixture from the v2 archive's entries and record it.

    Deriving the shards from the *stored v2 bytes* (not a fresh
    compression) pins the writer itself: the regression test replays
    exactly this construction from the checked-in v2 fixture and asserts
    byte-equal head + shards.  ``container_version`` picks the per-entry
    blob layout (3 = legacy, 4 = per-part CRCs).
    """
    archive = BatchArchive.from_bytes(blob_v2)
    head_path = HERE / f"{stem}.rpbt"
    report = archive.save_sharded(
        head_path, shard_size=V3_SHARD_SIZE, container_version=container_version
    )
    expected: dict = {
        "eb": EB,
        "mode": MODE,
        "shard_size": V3_SHARD_SIZE,
        "container_version": container_version,
        "keys": archive.keys(),
        "head": {
            "name": head_path.name,
            "n_bytes": head_path.stat().st_size,
            "sha256": hashlib.sha256(head_path.read_bytes()).hexdigest(),
        },
        "shards": [
            {
                "name": path.name,
                "n_bytes": path.stat().st_size,
                "sha256": hashlib.sha256(path.read_bytes()).hexdigest(),
            }
            for path in report.shard_paths
        ],
    }
    return expected


def eager_v4_expectations(blob_v2: bytes) -> dict:
    """Write the eager-writer v4 container fixture and record it.

    One entry (``golden/tac``) from the v2 archive, re-serialized by
    ``CompressedDataset.to_bytes`` at ``container_version=4`` — same
    payload bytes as the fixture it came from, new integrity framing.
    """
    from repro.core.container import CompressedDataset

    comp = BatchArchive.from_bytes(blob_v2).get("golden/tac")
    comp.container_version = 4
    blob = comp.to_bytes()
    path = HERE / "golden_entry_v4.rpam"
    path.write_bytes(blob)
    return {
        "name": path.name,
        "key": "golden/tac",
        "n_bytes": len(blob),
        "sha256": hashlib.sha256(blob).hexdigest(),
    }


def gsp_expectations() -> dict:
    """Write and record the GSP strategy-format fixtures.

    Three blobs over the analytic :func:`tests.helpers.golden_gsp_dataset`
    (fine level ~70% dense -> GSP, coarse -> OpST):

    * ``golden_gsp_legacy.rpbt`` — ``brick_size=None``: the strategy
      format 1 single-stream layout every pre-brick blob used (one
      ``L0/grid`` part).  Pins that the legacy write path still produces
      the exact pre-brick bytes and that such blobs stay readable.
    * ``golden_gsp_bricks.rpbt`` — ``brick_size=GSP_BRICK_SIZE``:
      strategy format 2 (brick table part + one part per brick).
    * ``golden_gsp_shared.rpbt`` — bricks plus ``shared_tables=True``:
      one Huffman table per level (``L<idx>/table`` part) and per-stream
      ``SEC_TABLE_REF`` sections.  Pins the shared-table wire format.

    The JSON records sha256/bytes, per-level decode stats, and the
    values of a pinned 1/8-domain ROI read on the GSP level, so the
    partial-read output itself is golden-pinned for every format.
    """
    ds = golden_gsp_dataset()
    expected: dict = {"eb": EB, "mode": MODE, "brick_size": GSP_BRICK_SIZE,
                      "roi": [[s.start, s.stop] for s in GSP_ROI], "blobs": {}}
    variants = {
        "golden_gsp_legacy": TACCompressor(brick_size=None),
        "golden_gsp_bricks": TACCompressor(brick_size=GSP_BRICK_SIZE),
        "golden_gsp_shared": TACCompressor(
            brick_size=GSP_BRICK_SIZE, shared_tables=True
        ),
    }
    for stem, tac in variants.items():
        comp = tac.compress(ds, EB, mode=MODE)
        blob = comp.to_bytes()
        (HERE / f"{stem}.rpbt").write_bytes(blob)
        roi = tac.decompress_region(comp, 0, GSP_ROI)
        record = {
            "sha256": hashlib.sha256(blob).hexdigest(),
            "n_bytes": len(blob),
            "strategies": [m["strategy"] for m in comp.meta["levels"]],
            "levels": [
                {
                    "level": lvl.level,
                    "n_points": lvl.n_points(),
                    "sum": float(lvl.values().sum(dtype=np.float64)),
                }
                for lvl in tac.decompress(comp).levels
            ],
            "roi_sum": float(roi.sum(dtype=np.float64)),
            "roi_nonzero": int(np.count_nonzero(roi)),
        }
        bricks = comp.meta["levels"][0].get("bricks")
        if bricks:
            record["bricks"] = bricks
        shared = comp.meta["levels"][0].get("shared_table")
        if shared:
            record["shared_table"] = shared
        expected["blobs"][stem] = record
    return expected


#: Keyframe cadence of the ingest fixture: 3 steps -> kf, delta, kf.
INGEST_KF_INTERVAL = 2
INGEST_STEPS = 3
#: ROI pinned by the delta-chain partial-read expectation (one octant).
INGEST_ROI = (slice(0, 4), slice(0, 4), slice(0, 4))


def ingest_expectations() -> dict:
    """Write and record the temporal-delta ingest fixture.

    ``golden_ingest_delta.rpbt`` (+ shards) is an analytic 3-step series
    written through :class:`repro.ingest.IngestSession` with
    ``keyframe_interval=2``: entry t0000 is a keyframe, t0001 a
    closed-loop residual against t0000's reconstruction, t0002 the
    cadence keyframe.  Pins the deferred-head (v5) streamed entries, the
    ``temporal`` entry/level metadata, and — via recorded per-level
    reconstruction stats and a pinned ROI read — the read-side chain
    summation.
    """
    from repro.ingest import IngestConfig, IngestSession, read_timestep_level, read_timestep_region
    from repro.serve.reader import ArchiveReader
    from tests.helpers import golden_timestep_series

    series = golden_timestep_series(INGEST_STEPS)
    head_path = HERE / "golden_ingest_delta.rpbt"
    config = IngestConfig(
        error_bound=EB, mode=MODE,
        keyframe_interval=INGEST_KF_INTERVAL, shard_size=V3_SHARD_SIZE,
    )
    with IngestSession(head_path, config, meta={"fixture": "golden-ingest"}) as session:
        keys = session.extend(series)
    report = session.report
    expected: dict = {
        "eb": EB,
        "mode": MODE,
        "keyframe_interval": INGEST_KF_INTERVAL,
        "shard_size": V3_SHARD_SIZE,
        "roi": [[s.start, s.stop] for s in INGEST_ROI],
        "keys": keys,
        "temporal": [row["temporal"] for row in report.entries],
        "head": {
            "name": head_path.name,
            "n_bytes": head_path.stat().st_size,
            "sha256": hashlib.sha256(head_path.read_bytes()).hexdigest(),
        },
        "shards": [
            {
                "name": path.name,
                "n_bytes": path.stat().st_size,
                "sha256": hashlib.sha256(path.read_bytes()).hexdigest(),
            }
            for path in report.write.shard_paths
        ],
        "reconstructed": {},
    }
    with ArchiveReader(head_path) as reader:
        for key in keys:
            rows = []
            for level in range(len(series[0].levels)):
                lvl, _stats = read_timestep_level(reader, key, level)
                rows.append(
                    {
                        "level": level,
                        "n_points": int(lvl.mask.sum()),
                        "sum": float(lvl.data[lvl.mask].sum(dtype=np.float64)),
                    }
                )
            expected["reconstructed"][key] = rows
        roi, _stats = read_timestep_region(reader, keys[1], 0, INGEST_ROI)
        expected["roi_sum"] = float(roi.sum(dtype=np.float64))
        expected["roi_nonzero"] = int(np.count_nonzero(roi))
    return expected


def main() -> None:
    blobs = {}
    for version, stem in ((1, "golden_batch"), (2, "golden_batch_v2")):
        blob = build_archive(version)
        blobs[version] = blob
        (HERE / f"{stem}.rpbt").write_bytes(blob)
        expected = expectations(blob)
        (HERE / f"{stem}.json").write_text(json.dumps(expected, indent=2) + "\n")
        print(f"wrote {stem}.rpbt ({len(blob)} bytes) and {stem}.json")
    for stem, container_version in (("golden_batch_v3", 3), ("golden_batch_v4", 4)):
        expected = sharded_expectations(blobs[2], stem, container_version)
        if container_version == 4:
            expected["eager_entry"] = eager_v4_expectations(blobs[2])
        (HERE / f"{stem}.json").write_text(json.dumps(expected, indent=2) + "\n")
        names = [rec["name"] for rec in expected["shards"]]
        print(f"wrote {stem}.rpbt + {names} and {stem}.json")
    expected = gsp_expectations()
    (HERE / "golden_gsp.json").write_text(json.dumps(expected, indent=2) + "\n")
    print(f"wrote {list(expected['blobs'])} fixtures and golden_gsp.json")
    expected = ingest_expectations()
    (HERE / "golden_ingest_delta.json").write_text(json.dumps(expected, indent=2) + "\n")
    names = [rec["name"] for rec in expected["shards"]]
    print(f"wrote golden_ingest_delta.rpbt + {names} and golden_ingest_delta.json")


if __name__ == "__main__":
    main()
