"""Regenerate the golden batch-archive fixture.

Run from the repo root::

    PYTHONPATH=src:. python tests/data/make_golden.py

Writes ``golden_batch.rpbt`` (the container bytes the regression test
pins) and ``golden_batch.json`` (expected manifest plus per-entry
decompressed-value statistics).  Only regenerate when the container
format version is *intentionally* bumped — the whole point of the fixture
is that accidental format drift fails ``tests/test_golden_format.py``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.engine import BatchArchive, CompressionEngine, CompressionJob
from tests.helpers import golden_dataset

HERE = Path(__file__).parent
EB = 1e-3
MODE = "abs"
CODECS = ("tac", "1d", "zmesh", "3d")


def main() -> None:
    ds = golden_dataset()
    jobs = [
        CompressionJob(ds, codec=c, error_bound=EB, mode=MODE, label=f"golden/{c}")
        for c in CODECS
    ]
    blob = CompressionEngine().run_to_archive(
        jobs, fixture="golden", eb=EB, mode=MODE
    ).to_bytes()
    (HERE / "golden_batch.rpbt").write_bytes(blob)
    # Record expectations from the canonical (serialized) form, whose
    # entries are key-sorted.
    archive = BatchArchive.from_bytes(blob)

    expected: dict = {
        "sha256": hashlib.sha256(blob).hexdigest(),
        "n_bytes": len(blob),
        "eb": EB,
        "mode": MODE,
        "keys": archive.keys(),
        "manifest": archive.manifest(),
        "decompressed": {},
    }
    for key in archive.keys():
        restored = archive.decompress(key)
        expected["decompressed"][key] = [
            {
                "level": lvl.level,
                "n_points": lvl.n_points(),
                "sum": float(lvl.values().sum(dtype=np.float64)),
                "min": float(lvl.values().min()) if lvl.n_points() else 0.0,
                "max": float(lvl.values().max()) if lvl.n_points() else 0.0,
            }
            for lvl in restored.levels
        ]
    (HERE / "golden_batch.json").write_text(json.dumps(expected, indent=2) + "\n")
    print(f"wrote golden_batch.rpbt ({len(blob)} bytes) and golden_batch.json")


if __name__ == "__main__":
    main()
