"""Unit tests for the three comparison baselines."""

import numpy as np
import pytest

from repro.amr.reconstruct import max_level_errors
from repro.baselines.naive1d import Naive1DCompressor
from repro.baselines.uniform3d import Uniform3DCompressor
from repro.baselines.zmesh import ZMeshCompressor, level_traversal_keys, zmesh_order
from tests.helpers import two_level_dataset


class TestNaive1D:
    def test_roundtrip_error_bounded(self, z10_small):
        comp = Naive1DCompressor()
        blob = comp.compress(z10_small, 1e-3, mode="rel")
        recon = comp.decompress(blob)
        errs = max_level_errors(z10_small, recon)
        for err, eb in zip(errs, blob.meta["level_ebs"]):
            assert err <= eb * 1.001 + 1e-9

    def test_per_level_scales(self, z10_small):
        comp = Naive1DCompressor()
        blob = comp.compress(z10_small, 1e-3, mode="rel", per_level_scale=[2, 1])
        ebs = blob.meta["level_ebs"]
        assert ebs[0] == pytest.approx(2 * ebs[1])

    def test_masks_roundtrip(self, z10_small):
        comp = Naive1DCompressor()
        recon = comp.decompress(comp.compress(z10_small, 1e-3))
        for a, b in zip(z10_small.levels, recon.levels):
            assert np.array_equal(a.mask, b.mask)

    def test_no_masks_needs_structure(self, z10_small):
        comp = Naive1DCompressor(store_masks=False)
        blob = comp.compress(z10_small, 1e-3)
        with pytest.raises(ValueError, match="structure"):
            comp.decompress(blob)
        recon = comp.decompress(blob, structure=z10_small)
        assert recon.total_points() == z10_small.total_points()

    def test_metadata(self, z10_small):
        blob = Naive1DCompressor().compress(z10_small, 1e-3)
        assert blob.method == "baseline_1d"
        assert blob.dataset_name == z10_small.name
        assert blob.n_values == z10_small.total_points()
        assert blob.original_bytes == z10_small.original_bytes()


class TestZMeshOrdering:
    def test_keys_are_unique_across_levels(self, z10_small):
        keys = np.concatenate(
            [
                level_traversal_keys(lvl.mask, lvl.level, z10_small.n_levels)
                for lvl in z10_small.levels
            ]
        )
        assert keys.size == z10_small.total_points()
        assert np.unique(keys).size == keys.size

    def test_order_is_permutation(self, z10_small):
        order = zmesh_order(z10_small)
        assert order.size == z10_small.total_points()
        assert np.array_equal(np.sort(order), np.arange(order.size))

    def test_interleaves_levels(self):
        ds = two_level_dataset(n=8, fine_fraction=0.5)
        order = zmesh_order(ds)
        n_fine = ds.levels[0].n_points()
        # Level tags of the reordered stream: fine points are indices
        # [0, n_fine), coarse are the rest (concatenation order).
        tags = (order >= n_fine).astype(int)
        # A true interleave has many level switches, unlike the 2-switch
        # concatenation order.
        switches = int(np.count_nonzero(np.diff(tags)))
        assert switches > 2

    def test_coarse_cell_precedes_its_subtree_region(self):
        ds = two_level_dataset(n=8, fine_fraction=0.25)
        fine_keys = level_traversal_keys(ds.levels[0].mask, 0, 2)
        coarse_keys = level_traversal_keys(ds.levels[1].mask, 1, 2)
        # All keys distinct and both levels nonempty.
        assert fine_keys.size and coarse_keys.size
        assert np.unique(np.concatenate([fine_keys, coarse_keys])).size == (
            fine_keys.size + coarse_keys.size
        )

    def test_roundtrip_error_bounded(self, z10_small):
        comp = ZMeshCompressor()
        blob = comp.compress(z10_small, 1e-3, mode="rel")
        recon = comp.decompress(blob)
        errs = max_level_errors(z10_small, recon)
        for err, eb in zip(errs, blob.meta["level_ebs"]):
            assert err <= eb * 1.001 + 1e-9

    def test_values_restored_to_correct_cells(self):
        ds = two_level_dataset(n=8)
        comp = ZMeshCompressor()
        # Lossless (eb=0 -> rel range*0 = 0 -> lossless path).
        blob = comp.compress(ds, 0.0, mode="abs")
        recon = comp.decompress(blob)
        for a, b in zip(ds.levels, recon.levels):
            assert np.array_equal(a.data[a.mask], b.data[b.mask])

    def test_rejects_per_level_scales(self, z10_small):
        with pytest.raises(ValueError, match="per-level"):
            ZMeshCompressor().compress(z10_small, 1e-3, per_level_scale=[2, 1])

    def test_three_levels(self, t3_small):
        comp = ZMeshCompressor()
        recon = comp.decompress(comp.compress(t3_small, 1e-3, mode="rel"))
        assert recon.n_levels == 3


class TestUniform3D:
    def test_roundtrip_error_bounded(self, z10_small):
        comp = Uniform3DCompressor()
        blob = comp.compress(z10_small, 1e-3, mode="rel")
        recon = comp.decompress(blob)
        errs = max_level_errors(z10_small, recon)
        for err, eb in zip(errs, blob.meta["level_ebs"]):
            assert err <= eb * 1.001 + 1e-9

    def test_uniform_grid_available(self, z10_small):
        comp = Uniform3DCompressor()
        blob = comp.compress(z10_small, 1e-3, mode="rel")
        uniform = comp.decompress_uniform(blob)
        assert uniform.shape == (z10_small.finest.n,) * 3
        eb = blob.meta["level_ebs"][0]
        assert np.max(np.abs(uniform - z10_small.to_uniform())) <= eb * 1.001

    def test_rejects_per_level_scales(self, z10_small):
        with pytest.raises(ValueError, match="per-level"):
            Uniform3DCompressor().compress(z10_small, 1e-3, per_level_scale=[2, 1])

    def test_redundancy_inflates_bitrate_on_sparse_finest(self, t3_small, z10_small):
        # The 3D baseline compresses the up-sampled grid: on a dataset whose
        # points are nearly all coarse, its bit-rate per stored value blows
        # up relative to a dataset with a denser finest level.
        comp = Uniform3DCompressor()
        sparse = comp.compress(t3_small, 1e-3, mode="rel")
        dense = comp.compress(z10_small, 1e-3, mode="rel")
        assert sparse.bit_rate(include_masks=False) > 2 * dense.bit_rate(include_masks=False)

    def test_method_name(self):
        assert Uniform3DCompressor().method_name == "baseline_3d"
