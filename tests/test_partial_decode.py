"""Partial/parallel decompression: the plan/execute read-path contracts.

The acceptance bar for the random-access refactor:

* ``decompress_level`` / ``decompress_levels`` / ``decompress_region``
  are **bit-identical** to slicing a full ``decompress`` — for every TAC
  strategy (OpST/AKDTree/NaST/GSP/ZF), every registry baseline, and the
  delegated hybrid;
* ``decode_workers > 1`` is bit-identical to serial;
* partial reads provably do *less* decode work: the lazy reader's
  part-access log shows a single-level decode touching a strict subset
  of the payload parts, and an ROI decode skipping non-intersecting
  block-strategy groups entirely;
* the ``store_masks=False`` + ``structure=`` path round-trips for TAC
  and every registry baseline (previously only the mask-stored path was
  exercised end-to-end).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.hierarchy import AMRDataset, AMRLevel
from repro.core.container import MASK_PREFIX, LazyCompressedDataset
from repro.core.density import Strategy
from repro.core.gsp import brick_boxes, deserialize_brick_table
from repro.core.layout import blocks_in_region, deserialize_layout, layout_shapes
from repro.core.plan import DecompressionPlan, PlanExecutorMixin, normalize_region
from repro.core.tac import TACCompressor
from repro.engine import get_codec, supports_partial_decode
from tests.helpers import smooth_cube, two_level_dataset

EB = 1e-3

STRATEGIES = [
    Strategy.OPST,
    Strategy.AKDTREE,
    Strategy.NAST,
    Strategy.GSP,
    Strategy.ZF,
]

REGION = (slice(2, 10), slice(0, 7), slice(5, 16))


@pytest.fixture(scope="module")
def dataset() -> AMRDataset:
    return two_level_dataset(n=16, fine_fraction=0.3, seed=7)


def _assert_levels_equal(a: AMRLevel, b: AMRLevel):
    assert a.level == b.level
    assert np.array_equal(a.mask, b.mask)
    assert np.array_equal(a.data, b.data)


# ----------------------------------------------------------------------
# TAC: every strategy
# ----------------------------------------------------------------------
class TestTACPartialDecode:
    @pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
    def test_level_and_region_bit_identical(self, dataset, strategy):
        tac = TACCompressor(force_strategy=strategy)
        comp = tac.compress(dataset, EB, mode="abs")
        full = tac.decompress(comp)
        for idx in range(dataset.n_levels):
            lvl = tac.decompress_level(comp, idx)
            _assert_levels_equal(full.levels[idx], lvl)
            region = tac.decompress_region(comp, idx, REGION)
            expected = full.levels[idx].data[REGION]
            assert np.array_equal(region, expected)

    @pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
    def test_parallel_decode_bit_identical(self, dataset, strategy):
        tac = TACCompressor(force_strategy=strategy)
        comp = tac.compress(dataset, EB, mode="abs")
        serial = tac.decompress(comp)
        parallel = tac.decompress(comp, decode_workers=4)
        for a, b in zip(serial.levels, parallel.levels):
            _assert_levels_equal(a, b)
        region_serial = tac.decompress_region(comp, 0, REGION)
        region_parallel = tac.decompress_region(comp, 0, REGION, decode_workers=4)
        assert np.array_equal(region_serial, region_parallel)

    def test_levels_subset_order_preserved(self, dataset):
        tac = TACCompressor()
        comp = tac.compress(dataset, EB, mode="abs")
        full = tac.decompress(comp)
        subset = tac.decompress_levels(comp, [1, 0])
        assert [lvl.level for lvl in subset] == [1, 0]
        _assert_levels_equal(full.levels[1], subset[0])
        _assert_levels_equal(full.levels[0], subset[1])

    def test_level_index_validation(self, dataset):
        tac = TACCompressor()
        comp = tac.compress(dataset, EB, mode="abs")
        with pytest.raises(ValueError, match="out of range"):
            tac.decompress_level(comp, 5)
        with pytest.raises(ValueError, match="at least one level"):
            tac.decompress_levels(comp, [])

    def test_empty_level_assembles_to_zeros(self):
        """A level with no stored points decodes (and partial-decodes)."""
        n = 8
        fine_mask = np.ones((n, n, n), dtype=bool)
        coarse_mask = np.zeros((n // 2,) * 3, dtype=bool)
        ds = AMRDataset(
            levels=[
                AMRLevel(data=smooth_cube(n, seed=1), mask=fine_mask, level=0),
                AMRLevel(data=np.zeros((n // 2,) * 3, dtype=np.float32),
                         mask=coarse_mask, level=1),
            ],
            name="empty-coarse",
        )
        tac = TACCompressor()
        comp = tac.compress(ds, EB, mode="abs")
        full = tac.decompress(comp)
        lvl = tac.decompress_level(comp, 1)
        _assert_levels_equal(full.levels[1], lvl)
        assert lvl.n_points() == 0
        region = tac.decompress_region(comp, 1, (slice(0, 2), slice(0, 2), slice(0, 2)))
        assert region.shape == (2, 2, 2)
        assert not region.any()

    def test_plan_enumerates_only_requested_levels(self, dataset):
        tac = TACCompressor()
        comp = tac.compress(dataset, EB, mode="abs")
        plan = tac.build_decode_plan(comp)
        assert set(plan.part_names()) <= set(comp.parts)
        assert plan.levels() == [0, 1]
        sub = tac.build_decode_plan(comp, levels=[0])
        assert sub.levels() == [0]
        assert all(name.startswith("L0/") for name in sub.part_names())
        assert isinstance(plan.for_levels([1]), DecompressionPlan)
        assert plan.for_levels([1]).levels() == [1]

    def test_for_levels_keeps_shared_units(self, dataset):
        """Monolithic codecs tag their single unit level=-1 (serves all
        levels); a concrete subset must keep it."""
        for name in ("3d", "zmesh"):
            codec = get_codec(name)
            comp = codec.compress(dataset, EB, mode="abs")
            plan = codec.build_decode_plan(comp)
            assert plan.levels() == [-1]
            sub = plan.for_levels([0])
            assert len(sub) == 1
            assert sub.part_names() == plan.part_names()


# ----------------------------------------------------------------------
# brick-chunked GSP/ZF levels (strategy format 2)
# ----------------------------------------------------------------------
class TestGSPBrickPartialDecode:
    """The GSP/ZF region index: one part + one decode unit per brick."""

    PADDED = ("gsp", "zf")

    def _compressed(self, dataset, strategy, brick_size=4):
        tac = TACCompressor(force_strategy=strategy, brick_size=brick_size)
        return tac, tac.compress(dataset, EB, mode="abs")

    @pytest.mark.parametrize("strategy", [Strategy.GSP, Strategy.ZF], ids=lambda s: s.value)
    def test_multi_brick_bit_identity(self, dataset, strategy):
        tac, comp = self._compressed(dataset, strategy)
        assert comp.meta["levels"][0]["bricks"]["n"] == 64  # 16^3 at 4^3 bricks
        assert comp.meta["levels"][0]["strategy_format"] == 2
        full = tac.decompress(comp)
        for idx in range(dataset.n_levels):
            lvl = tac.decompress_level(comp, idx)
            _assert_levels_equal(full.levels[idx], lvl)
            region = tac.decompress_region(comp, idx, REGION)
            assert np.array_equal(region, full.levels[idx].data[REGION])

    @pytest.mark.parametrize("strategy", [Strategy.GSP, Strategy.ZF], ids=lambda s: s.value)
    def test_parallel_brick_decode_bit_identical(self, dataset, strategy):
        tac, comp = self._compressed(dataset, strategy)
        serial = tac.decompress(comp)
        parallel = tac.decompress(comp, decode_workers=4)
        for a, b in zip(serial.levels, parallel.levels):
            _assert_levels_equal(a, b)
        assert np.array_equal(
            tac.decompress_region(comp, 0, REGION),
            tac.decompress_region(comp, 0, REGION, decode_workers=4),
        )

    def test_brick_plan_units_carry_boxes(self, dataset):
        tac, comp = self._compressed(dataset, Strategy.GSP)
        plan = tac.build_decode_plan(comp, levels=[0])
        brick_units = [u for u in plan.units if u.key.startswith("L0/b")]
        assert len(brick_units) == 64
        assert all(u.box is not None for u in brick_units)
        # Pruning by the ROI keeps exactly the intersecting bricks.
        box = normalize_region(REGION, (16, 16, 16))
        pruned = plan.for_region(box)
        assert 0 < len(pruned) < len(plan)

    def test_legacy_single_stream_layout_still_written_and_read(self, dataset):
        tac = TACCompressor(force_strategy=Strategy.GSP, brick_size=None)
        comp = tac.compress(dataset, EB, mode="abs")
        assert "L0/grid" in comp.parts
        assert not any(name.startswith("L0/b") for name in comp.parts)
        assert "bricks" not in comp.meta["levels"][0]
        full = tac.decompress(comp)
        region = tac.decompress_region(comp, 0, REGION)
        assert np.array_equal(region, full.levels[0].data[REGION])

    @pytest.mark.parametrize("container_version", [1, 2, 3])
    def test_bricked_blob_roundtrips_every_container_version(
        self, dataset, container_version
    ):
        tac, comp = self._compressed(dataset, Strategy.GSP)
        comp.container_version = container_version
        blob = comp.to_bytes()
        lazy = LazyCompressedDataset.open(blob)
        assert lazy.container_version == container_version
        full = tac.decompress(comp)
        restored = tac.decompress(lazy)
        for a, b in zip(full.levels, restored.levels):
            _assert_levels_equal(a, b)
        # Byte-stable re-serialization, as for every wire version.
        from repro.core.container import CompressedDataset

        assert CompressedDataset.from_bytes(blob).to_bytes() == blob

    def test_roi_decodes_strictly_fewer_parts_and_bytes(self, dataset):
        """The acceptance criterion: for a sub-domain ROI on a GSP level,
        strictly fewer container parts are fetched and strictly fewer
        payload bytes decoded than a full decode — previously the whole
        grid was decoded and cropped."""
        tac, comp = self._compressed(dataset, Strategy.GSP)
        blob = comp.to_bytes()

        lazy_full = LazyCompressedDataset.open(blob)
        full = tac.decompress(lazy_full)
        full_parts = {n for n in lazy_full.parts.accessed() if not n.startswith(MASK_PREFIX)}

        roi = (slice(0, 8), slice(0, 8), slice(0, 8))  # 1/8 of the domain
        lazy_roi = LazyCompressedDataset.open(blob)
        region = tac.decompress_region(lazy_roi, 0, roi)
        roi_parts = {n for n in lazy_roi.parts.accessed() if not n.startswith(MASK_PREFIX)}

        assert np.array_equal(region, full.levels[0].data[roi])
        assert roi_parts < full_parts
        assert lazy_roi.parts.bytes_read < lazy_full.parts.bytes_read
        # 1/8-domain ROI on a 4^3 brick grid: 2^3 of 64 bricks.
        assert sum(1 for n in roi_parts if n.startswith("L0/b") and n != "L0/bricks") == 8

    def test_decoded_cells_bounded_by_brick_aligned_roi(self, dataset):
        """Satellite regression: an ROI read must decode at most the
        brick-aligned ROI volume, never the level volume."""
        tac, comp = self._compressed(dataset, Strategy.GSP)
        lazy = LazyCompressedDataset.open(comp.to_bytes())
        roi = (slice(2, 7), slice(3, 9), slice(1, 5))
        tac.decompress_region(lazy, 0, roi)

        table = deserialize_brick_table(comp.parts["L0/bricks"])
        boxes = brick_boxes(table.padded_shape, table.brick_size)
        decoded_cells = 0
        for name in lazy.parts.accessed():
            if name.startswith("L0/b") and name != "L0/bricks":
                box = boxes[int(name[len("L0/b"):])]
                decoded_cells += int(np.prod([hi - lo for lo, hi in box]))
        size = table.brick_size
        aligned = [
            (spec.start // size * size, -(-spec.stop // size) * size) for spec in roi
        ]
        aligned_volume = int(np.prod([hi - lo for lo, hi in aligned]))
        assert 0 < decoded_cells <= aligned_volume
        assert decoded_cells < int(np.prod(table.padded_shape))

    def test_generic_mixin_region_path_prunes_brick_units(self, dataset):
        """`PlanExecutorMixin.decompress_region` (the default every codec
        inherits) must prune prunable units itself — not materialize the
        level — when unit geometry is available."""
        tac, comp = self._compressed(dataset, Strategy.GSP)
        lazy = LazyCompressedDataset.open(comp.to_bytes())
        roi = (slice(0, 4), slice(0, 4), slice(0, 4))  # exactly one brick
        out = PlanExecutorMixin.decompress_region(tac, lazy, 0, roi)
        full = tac.decompress(comp)
        assert np.array_equal(out, full.levels[0].data[roi])
        touched = {
            n for n in lazy.parts.accessed()
            if n.startswith("L0/b") and n != "L0/bricks"
        }
        assert len(touched) == 1

    def test_pad_only_bricks_prunable_by_any_roi(self):
        """A brick wholly inside the block padding covers no level cells;
        its plan unit's clipped box must never intersect an ROI."""
        n = 6  # pads to 12 with unit_block=12 -> brick layers beyond shape
        mask = np.ones((n, n, n), dtype=bool)
        ds = AMRDataset(
            levels=[AMRLevel(data=smooth_cube(n, seed=9), mask=mask, level=0)],
            name="pad-brick",
        )
        tac = TACCompressor(force_strategy=Strategy.ZF, unit_block=12, brick_size=4)
        comp = tac.compress(ds, EB, mode="abs")
        plan = tac.build_decode_plan(comp)
        full_box = ((0, n), (0, n), (0, n))
        kept = plan.for_region(full_box)
        assert len(kept) < len(plan)  # pad-only bricks dropped even for a full ROI
        region = tac.decompress_region(comp, 0, tuple(slice(0, n) for _ in range(3)))
        assert np.array_equal(region, tac.decompress(comp).levels[0].data)


# ----------------------------------------------------------------------
# normalize_region: negative / out-of-range specs resolve or fail loudly
# ----------------------------------------------------------------------
class TestNormalizeRegion:
    SHAPE = (16, 16, 16)

    def test_plain_int_pairs(self):
        assert normalize_region(((2, 10), (0, 7), (5, 16)), self.SHAPE) == (
            (2, 10), (0, 7), (5, 16),
        )

    def test_negative_pairs_follow_python_indexing(self):
        assert normalize_region(((-8, -2), (0, -1), (-16, 16)), self.SHAPE) == (
            (8, 14), (0, 15), (0, 16),
        )

    def test_none_bounds_mean_full_extent(self):
        assert normalize_region(((None, 8), (4, None), (None, None)), self.SHAPE) == (
            (0, 8), (4, 16), (0, 16),
        )

    def test_negative_slices_follow_python_indexing(self):
        assert normalize_region(
            (slice(-8, -2), slice(None, -1), slice(-16, None)), self.SHAPE
        ) == ((8, 14), (0, 15), (0, 16))

    def test_out_of_range_pair_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            normalize_region(((0, 17), (0, 16), (0, 16)), self.SHAPE)
        with pytest.raises(ValueError, match="out of range"):
            normalize_region(((-17, 4), (0, 16), (0, 16)), self.SHAPE)

    def test_oversized_slice_clamps_like_python(self):
        assert normalize_region(
            (slice(0, 10**9), slice(-99, None), slice(None)), self.SHAPE
        ) == ((0, 16), (0, 16), (0, 16))

    def test_empty_region_message_names_axis_and_bounds(self):
        with pytest.raises(ValueError, match=r"axis 1.*resolved to \[4, 4\)"):
            normalize_region((slice(0, 4), (4, 4), slice(0, 4)), self.SHAPE)
        with pytest.raises(ValueError, match="empty region"):
            normalize_region(((8, -12), (0, 4), (0, 4)), self.SHAPE)

    def test_non_int_bound_rejected(self):
        with pytest.raises(TypeError, match="axis 0"):
            normalize_region(((0.5, 4), (0, 4), (0, 4)), self.SHAPE)
        with pytest.raises(TypeError, match="int or None"):
            normalize_region(((True, 4), (0, 4), (0, 4)), self.SHAPE)

    def test_wrong_arity_and_step(self):
        with pytest.raises(ValueError, match="3 axis"):
            normalize_region((slice(0, 4), slice(0, 4)), self.SHAPE)
        with pytest.raises(ValueError, match="step 1"):
            normalize_region((slice(0, 4, 2), slice(0, 4), slice(0, 4)), self.SHAPE)

    def test_numpy_int_bounds_accepted(self):
        region = ((np.int64(2), np.int32(10)), (0, 7), (5, 16))
        assert normalize_region(region, self.SHAPE)[0] == (2, 10)


# ----------------------------------------------------------------------
# lazy access accounting: partial decode does strictly less work
# ----------------------------------------------------------------------
class TestAccessAccounting:
    def _payload_parts(self, names):
        return {n for n in names if not n.startswith(MASK_PREFIX)}

    @pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
    def test_single_level_reads_strict_subset(self, dataset, strategy):
        tac = TACCompressor(force_strategy=strategy)
        blob = tac.compress(dataset, EB, mode="abs").to_bytes()

        lazy_full = LazyCompressedDataset.open(blob)
        tac.decompress(lazy_full)
        full_payloads = self._payload_parts(lazy_full.parts.accessed())

        lazy_one = LazyCompressedDataset.open(blob)
        tac.decompress_level(lazy_one, 0)
        one_payloads = self._payload_parts(lazy_one.parts.accessed())

        assert one_payloads < full_payloads  # strictly fewer SZ decodes
        assert all(name.startswith("L0/") for name in one_payloads)
        assert lazy_one.parts.bytes_read < lazy_full.parts.bytes_read

    def test_region_skips_non_intersecting_groups(self):
        """Two distant clusters of different cube sizes → two OpST groups;
        an ROI over one cluster must not decode the other's stream."""
        n = 16
        mask = np.zeros((n, n, n), dtype=bool)
        mask[0:8, 0:8, 0:8] = True       # 8^3 cube group
        mask[12:16, 12:16, 12:16] = True  # 4^3 cube group
        ds = AMRDataset(
            levels=[AMRLevel(data=smooth_cube(n, seed=2), mask=mask, level=0)],
            name="two-clusters",
        )
        tac = TACCompressor(force_strategy=Strategy.OPST, unit_block=4)
        comp = tac.compress(ds, EB, mode="abs")
        level_meta = comp.meta["levels"][0]
        assert level_meta["n_groups"] == 2, "test premise: two shape groups"

        blob = comp.to_bytes()
        region = (slice(0, 8), slice(0, 8), slice(0, 8))

        # The layout-level region index agrees the far group is untouched.
        extraction = deserialize_layout(comp.parts["L0/layout"])
        box = normalize_region(region, (n, n, n))
        hits = {
            shape: blocks_in_region(extraction, shape, box).size
            for shape in layout_shapes(extraction)
        }
        assert sum(1 for count in hits.values() if count) == 1

        lazy = LazyCompressedDataset.open(blob)
        roi = tac.decompress_region(lazy, 0, region)
        payloads = {
            name for name in lazy.parts.accessed()
            if name.startswith("L0/g")
        }
        assert len(payloads) == 1  # one of two group streams decoded

        full = tac.decompress(comp)
        assert np.array_equal(roi, full.levels[0].data[region])

    def test_region_outside_all_blocks_keeps_dtype(self):
        """An ROI intersecting no stored block returns zeros *in the
        dataset's dtype* — same as slicing the full reconstruction."""
        n = 16
        mask = np.zeros((n, n, n), dtype=bool)
        mask[0:4, 0:4, 0:4] = True
        ds = AMRDataset(
            levels=[
                AMRLevel(
                    data=smooth_cube(n, seed=4, dtype=np.float64), mask=mask, level=0
                )
            ],
            name="corner-only",
        )
        tac = TACCompressor(force_strategy=Strategy.OPST, unit_block=4)
        comp = tac.compress(ds, EB, mode="abs")
        region = (slice(8, 16), slice(8, 16), slice(8, 16))
        roi = tac.decompress_region(comp, 0, region)
        full_slice = tac.decompress(comp).levels[0].data[region]
        assert roi.dtype == full_slice.dtype == np.float64
        assert np.array_equal(roi, full_slice)
        assert not roi.any()


# ----------------------------------------------------------------------
# baselines and the hybrid: same API, same identities
# ----------------------------------------------------------------------
class TestRegistryPartialDecode:
    CODECS = ("tac", "tac-hybrid", "1d", "zmesh", "3d")

    @pytest.mark.parametrize("name", CODECS)
    def test_supports_partial_decode(self, name):
        assert supports_partial_decode(get_codec(name))

    @pytest.mark.parametrize("name", CODECS)
    def test_partial_bit_identical_to_full(self, dataset, name):
        codec = get_codec(name)
        comp = codec.compress(dataset, EB, mode="abs")
        full = codec.decompress(comp)
        parallel = codec.decompress(comp, decode_workers=4)
        for a, b in zip(full.levels, parallel.levels):
            _assert_levels_equal(a, b)
        for idx in range(dataset.n_levels):
            lvl = codec.decompress_level(comp, idx)
            _assert_levels_equal(full.levels[idx], lvl)
            region = codec.decompress_region(comp, idx, REGION, decode_workers=2)
            assert np.array_equal(region, full.levels[idx].data[REGION])

    def test_hybrid_delegation_forwards_partial_reads(self):
        """A dense dataset delegates to the 3D baseline; the partial API
        must follow the delegation, not read TAC-shaped parts."""
        n = 8
        fine_mask = np.ones((n, n, n), dtype=bool)
        coarse_mask = np.zeros((n // 2,) * 3, dtype=bool)
        dense = AMRDataset(
            levels=[
                AMRLevel(data=smooth_cube(n, seed=3), mask=fine_mask, level=0),
                AMRLevel(data=np.zeros((n // 2,) * 3, dtype=np.float32),
                         mask=coarse_mask, level=1),
            ],
            name="dense",
        )
        hybrid = get_codec("tac-hybrid")
        comp = hybrid.compress(dense, EB, mode="abs")
        assert comp.meta.get("delegated") == "baseline_3d"
        full = hybrid.decompress(comp)
        lvl = hybrid.decompress_level(comp, 0)
        _assert_levels_equal(full.levels[0], lvl)
        region = hybrid.decompress_region(comp, 0, REGION)
        assert np.array_equal(region, full.levels[0].data[REGION])
        plan = hybrid.build_decode_plan(comp)
        assert plan.part_names() == ["uniform"]

    def test_lazy_single_level_reads_fewer_parts_1d(self, dataset):
        codec = get_codec("1d")
        blob = codec.compress(dataset, EB, mode="abs").to_bytes()
        lazy = LazyCompressedDataset.open(blob)
        codec.decompress_level(lazy, 1)
        assert lazy.parts.accessed() == {"L1/values", f"{MASK_PREFIX}L1"}


# ----------------------------------------------------------------------
# store_masks=False + structure= (all codecs)
# ----------------------------------------------------------------------
class TestStructureSuppliedMasks:
    CODECS = ("tac", "1d", "zmesh", "3d")

    @pytest.mark.parametrize("name", CODECS)
    def test_maskless_roundtrip_matches_masked(self, dataset, name):
        masked = get_codec(name).compress(dataset, EB, mode="abs")
        bare = get_codec(name, store_masks=False).compress(dataset, EB, mode="abs")
        assert not any(p.startswith(MASK_PREFIX) for p in bare.parts)
        assert bare.compressed_bytes() < masked.compressed_bytes()

        reference = get_codec(name).decompress(masked)
        restored = get_codec(name).decompress(bare, structure=dataset)
        for a, b in zip(reference.levels, restored.levels):
            _assert_levels_equal(a, b)

    @pytest.mark.parametrize("name", CODECS)
    def test_maskless_partial_decode_with_structure(self, dataset, name):
        codec = get_codec(name, store_masks=False)
        comp = codec.compress(dataset, EB, mode="abs")
        full = codec.decompress(comp, structure=dataset)
        lvl = codec.decompress_level(comp, 0, structure=dataset)
        _assert_levels_equal(full.levels[0], lvl)
        region = codec.decompress_region(comp, 0, REGION, structure=dataset)
        assert np.array_equal(region, full.levels[0].data[REGION])

    @pytest.mark.parametrize("name", CODECS)
    def test_maskless_without_structure_fails_loudly(self, dataset, name):
        codec = get_codec(name, store_masks=False)
        comp = codec.compress(dataset, EB, mode="abs")
        with pytest.raises(ValueError, match="masks were not stored"):
            codec.decompress(comp)

    def test_maskless_roundtrip_serialized(self, dataset):
        """The maskless path survives a full serialize/deserialize cycle."""
        codec = get_codec("tac", store_masks=False)
        blob = codec.compress(dataset, EB, mode="abs").to_bytes()
        lazy = LazyCompressedDataset.open(blob)
        restored = codec.decompress(lazy, structure=dataset)
        reference = codec.decompress(
            get_codec("tac").compress(dataset, EB, mode="abs")
        )
        for a, b in zip(reference.levels, restored.levels):
            _assert_levels_equal(a, b)
