"""Unit tests for the container stream format and the lossless back end."""

import numpy as np
import pytest

from repro.sz import lossless, stream


class TestLossless:
    def test_zlib_roundtrip(self):
        data = b"abc" * 1000
        codec, payload = lossless.compress_bytes(data, level=1)
        assert codec == lossless.CODEC_ZLIB
        assert lossless.decompress_bytes(codec, payload) == data

    def test_raw_fallback_for_incompressible(self, rng):
        data = rng.integers(0, 256, size=256, dtype=np.uint8).tobytes()
        codec, payload = lossless.compress_bytes(data, level=1)
        if codec == lossless.CODEC_RAW:
            assert payload == data
        assert lossless.decompress_bytes(codec, payload) == data

    def test_raw_disallowed(self, rng):
        data = rng.integers(0, 256, size=64, dtype=np.uint8).tobytes()
        codec, payload = lossless.compress_bytes(data, level=1, allow_raw=False)
        assert codec == lossless.CODEC_ZLIB
        assert lossless.decompress_bytes(codec, payload) == data

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            lossless.decompress_bytes(99, b"")

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            lossless.compress_bytes(b"x", level=11)

    def test_int_array_roundtrip(self, rng):
        arr = rng.integers(-(2**40), 2**40, size=500).astype(np.int64)
        codec, payload = lossless.pack_int_array(arr)
        out = lossless.unpack_int_array(codec, payload, np.int64, arr.size)
        assert np.array_equal(out, arr)
        assert out.flags.writeable

    def test_int_array_count_mismatch(self):
        codec, payload = lossless.pack_int_array(np.arange(10, dtype=np.int64))
        with pytest.raises(ValueError, match="expected"):
            lossless.unpack_int_array(codec, payload, np.int64, 11)

    def test_codec_names(self):
        assert lossless.codec_name(lossless.CODEC_RAW) == "raw"
        assert lossless.codec_name(lossless.CODEC_ZLIB) == "zlib"
        assert "unknown" in lossless.codec_name(42)


class TestStreamFormat:
    def make_header(self, **overrides):
        defaults = dict(
            mode="abs",
            dtype=np.dtype(np.float32),
            shape=(4, 5, 6),
            eb_user=1e-3,
            eb_abs=1e-3,
            flags=0,
        )
        defaults.update(overrides)
        return stream.StreamHeader(**defaults)

    def test_header_roundtrip(self):
        header = self.make_header()
        blob = stream.serialize(header, [(stream.SEC_RAW, lossless.CODEC_RAW, b"abc")])
        parsed = stream.parse(blob)
        assert parsed.header.mode == "abs"
        assert parsed.header.dtype == np.float32
        assert parsed.header.shape == (4, 5, 6)
        assert parsed.header.eb_abs == 1e-3
        assert parsed.section(stream.SEC_RAW) == (lossless.CODEC_RAW, b"abc")

    def test_multiple_sections_preserved(self):
        header = self.make_header()
        sections = [
            (stream.SEC_PAYLOAD, 0, b"payload"),
            (stream.SEC_OUTLIERS, 1, b"outliers"),
            (stream.SEC_META, 0, b"meta"),
        ]
        parsed = stream.parse(stream.serialize(header, sections))
        assert parsed.section_sizes() == {
            stream.SEC_PAYLOAD: 7,
            stream.SEC_OUTLIERS: 8,
            stream.SEC_META: 4,
        }

    def test_missing_section_raises(self):
        parsed = stream.parse(stream.serialize(self.make_header(), []))
        with pytest.raises(ValueError, match="missing"):
            parsed.section(stream.SEC_PAYLOAD)

    def test_bad_magic_rejected(self):
        blob = stream.serialize(self.make_header(), [])
        with pytest.raises(ValueError, match="magic"):
            stream.parse(b"XXXX" + blob[4:])

    def test_truncation_rejected(self):
        blob = stream.serialize(
            self.make_header(), [(stream.SEC_PAYLOAD, 0, b"0123456789")]
        )
        with pytest.raises(ValueError):
            stream.parse(blob[:-3])

    def test_trailing_bytes_rejected(self):
        blob = stream.serialize(self.make_header(), [])
        with pytest.raises(ValueError, match="trailing"):
            stream.parse(blob + b"\x00")

    def test_header_size_property(self):
        header = self.make_header(shape=(3, 4))
        assert header.size == 12

    def test_unsupported_dtype_rejected(self):
        header = self.make_header(dtype=np.dtype(np.int32))
        with pytest.raises(TypeError, match="unsupported dtype"):
            stream.serialize(header, [])

    def test_unknown_mode_rejected(self):
        header = self.make_header(mode="bogus")
        with pytest.raises(ValueError, match="unknown error mode"):
            stream.serialize(header, [])

    def test_meta_roundtrip(self):
        raw = stream.pack_meta(
            radius=4096,
            max_len=16,
            block_size=1024,
            total_bits=123456,
            n_symbols=999,
            n_outliers=7,
            predictor="interp",
        )
        meta = stream.unpack_meta(raw)
        assert meta == {
            "radius": 4096,
            "max_len": 16,
            "predictor": "interp",
            "block_size": 1024,
            "total_bits": 123456,
            "n_symbols": 999,
            "n_outliers": 7,
        }

    def test_meta_predictor_codes(self):
        raw = stream.pack_meta(
            radius=1, max_len=2, block_size=3, total_bits=4, n_symbols=5,
            n_outliers=6, predictor="lorenzo",
        )
        assert stream.unpack_meta(raw)["predictor"] == "lorenzo"
        with pytest.raises(ValueError, match="unknown predictor"):
            stream.pack_meta(
                radius=1, max_len=2, block_size=3, total_bits=4, n_symbols=5,
                n_outliers=6, predictor="nope",
            )
