"""Unit tests for AMR levels, datasets, and their invariants."""

import numpy as np
import pytest

from repro.amr.hierarchy import AMRDataset, AMRLevel
from tests.helpers import two_level_dataset


def make_level(n=8, density=0.5, level=0, seed=0):
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n, n)) < density
    data = np.where(mask, rng.standard_normal((n, n, n)).astype(np.float32), np.float32(0))
    return AMRLevel(data=data, mask=mask, level=level)


class TestAMRLevel:
    def test_density(self):
        mask = np.zeros((4, 4, 4), dtype=bool)
        mask[:2] = True
        lvl = AMRLevel(data=np.ones((4, 4, 4), dtype=np.float32), mask=mask, level=0)
        assert lvl.density() == pytest.approx(0.5)

    def test_n_points_matches_mask(self):
        lvl = make_level()
        assert lvl.n_points() == int(lvl.mask.sum())

    def test_values_scan_order(self):
        lvl = make_level()
        assert np.array_equal(lvl.values(), lvl.data[lvl.mask])

    def test_masked_data_zeroes_invalid(self):
        lvl = make_level()
        masked = lvl.masked_data()
        assert np.all(masked[~lvl.mask] == 0)
        assert np.array_equal(masked[lvl.mask], lvl.data[lvl.mask])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="3D"):
            AMRLevel(data=np.zeros((4, 4)), mask=np.zeros((4, 4), dtype=bool), level=0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            AMRLevel(
                data=np.zeros((4, 4, 4)), mask=np.zeros((4, 4, 2), dtype=bool), level=0
            )

    def test_rejects_negative_level(self):
        with pytest.raises(ValueError, match="non-negative"):
            AMRLevel(data=np.zeros((2, 2, 2)), mask=np.ones((2, 2, 2), dtype=bool), level=-1)


class TestAMRDataset:
    def test_validate_passes_on_exact_tiling(self):
        two_level_dataset().validate()

    def test_validate_catches_overlap(self):
        ds = two_level_dataset()
        bad_coarse = ds.levels[1].mask.copy()
        bad_coarse[~bad_coarse][:0] = True  # no-op; flip one refined cell instead
        bad_coarse = np.ones_like(bad_coarse)
        levels = [
            ds.levels[0],
            AMRLevel(data=ds.levels[1].data, mask=bad_coarse, level=1),
        ]
        with pytest.raises(ValueError, match="multiply covered"):
            ds.with_levels(levels).validate()

    def test_validate_catches_hole(self):
        ds = two_level_dataset()
        bad_fine = ds.levels[0].mask.copy()
        bad_fine[tuple(np.argwhere(bad_fine)[0])] = False
        levels = [
            AMRLevel(data=ds.levels[0].data, mask=bad_fine, level=0),
            ds.levels[1],
        ]
        with pytest.raises(ValueError, match="uncovered"):
            ds.with_levels(levels).validate()

    def test_rejects_wrong_level_order(self):
        lvl0 = make_level(8, level=0)
        lvl1 = make_level(4, level=0)  # wrong index
        with pytest.raises(ValueError, match="ordered finest-first"):
            AMRDataset(levels=[lvl0, lvl1])

    def test_rejects_wrong_grid_ratio(self):
        lvl0 = make_level(8, level=0)
        lvl1 = make_level(3, level=1)
        with pytest.raises(ValueError, match="ratio"):
            AMRDataset(levels=[lvl0, lvl1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one level"):
            AMRDataset(levels=[])

    def test_densities_sum_to_one_when_tiled(self):
        ds = two_level_dataset()
        assert sum(ds.densities()) == pytest.approx(1.0)

    def test_total_points(self):
        ds = two_level_dataset()
        assert ds.total_points() == sum(l.n_points() for l in ds.levels)

    def test_original_bytes_float32(self):
        ds = two_level_dataset()
        assert ds.original_bytes() == 4 * ds.total_points()

    def test_upsample_factor(self):
        ds = two_level_dataset()
        assert ds.upsample_factor(0) == 1
        assert ds.upsample_factor(1) == 2

    def test_to_uniform_respects_ownership(self):
        ds = two_level_dataset(n=8)
        uniform = ds.to_uniform()
        fine = ds.levels[0]
        assert np.array_equal(uniform[fine.mask], fine.data[fine.mask])
        # A coarse-owned cell holds its coarse value replicated.
        coarse = ds.levels[1]
        coords = np.argwhere(coarse.mask)
        ci, cj, ck = coords[0]
        block = uniform[2 * ci : 2 * ci + 2, 2 * cj : 2 * cj + 2, 2 * ck : 2 * ck + 2]
        assert np.all(block == coarse.data[ci, cj, ck])

    def test_summary_mentions_name_and_levels(self):
        ds = two_level_dataset()
        text = ds.summary()
        assert "toy2" in text and "2 level" in text

    def test_with_levels_preserves_metadata(self):
        ds = two_level_dataset()
        clone = ds.with_levels(ds.levels, suffix="_x")
        assert clone.name == "toy2_x"
        assert clone.field == ds.field
