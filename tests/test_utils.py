"""Unit tests for timing and validation utilities."""

import numpy as np
import pytest

from repro.utils.timer import Timer, TimingRecord, timed
from repro.utils.validation import (
    check_error_bound,
    check_finite,
    check_positive_int,
    ensure_ndarray,
)


class TestTimer:
    def test_records_span(self):
        record = TimingRecord()
        with Timer(record, "work"):
            pass
        assert record.get("work") >= 0.0
        assert record.total() == record.get("work")

    def test_spans_accumulate(self):
        record = TimingRecord()
        for _ in range(3):
            with Timer(record, "loop"):
                pass
        assert record.get("loop") >= 0.0
        assert len(record.spans) == 1

    def test_merge(self):
        a = TimingRecord({"x": 1.0})
        b = TimingRecord({"x": 2.0, "y": 3.0})
        merged = a.merge(b)
        assert merged.get("x") == 3.0
        assert merged.get("y") == 3.0
        # Originals untouched.
        assert a.get("x") == 1.0

    def test_timed_with_none_is_noop(self):
        with timed(None, "anything"):
            value = 42
        assert value == 42

    def test_timed_with_record(self):
        record = TimingRecord()
        with timed(record, "stage"):
            pass
        assert "stage" in record.spans

    def test_get_default(self):
        assert TimingRecord().get("missing", 7.0) == 7.0


class TestValidation:
    def test_ensure_ndarray_passthrough_float32(self):
        arr = np.zeros(4, dtype=np.float32)
        out = ensure_ndarray(arr)
        assert out.dtype == np.float32

    def test_ensure_ndarray_upcasts_int(self):
        out = ensure_ndarray(np.array([1, 2, 3]))
        assert out.dtype == np.float64

    def test_ensure_ndarray_upcasts_float16(self):
        out = ensure_ndarray(np.zeros(3, dtype=np.float16))
        assert out.dtype == np.float64

    def test_ensure_ndarray_rejects_strings(self):
        with pytest.raises(TypeError, match="unsupported dtype"):
            ensure_ndarray(np.array(["a"]))

    def test_ensure_ndarray_contiguous(self):
        base = np.zeros((4, 4), dtype=np.float32)
        out = ensure_ndarray(base[:, ::2])
        assert out.flags.c_contiguous

    def test_ensure_ndarray_empty_flag(self):
        with pytest.raises(ValueError, match="empty"):
            ensure_ndarray(np.zeros(0), allow_empty=False)

    def test_check_finite_accepts_clean(self):
        check_finite(np.array([1.0, 2.0]))

    def test_check_finite_rejects_nan_and_counts(self):
        with pytest.raises(ValueError, match="2 non-finite"):
            check_finite(np.array([np.nan, 1.0, np.inf]))

    def test_check_error_bound(self):
        assert check_error_bound(1e-3) == 1e-3
        assert check_error_bound(0.0, allow_zero=True) == 0.0
        with pytest.raises(ValueError):
            check_error_bound(0.0)
        with pytest.raises(ValueError):
            check_error_bound(-1.0, allow_zero=True)
        with pytest.raises(ValueError):
            check_error_bound(float("nan"))

    def test_check_positive_int(self):
        assert check_positive_int(4, name="x") == 4
        with pytest.raises(ValueError):
            check_positive_int(0, name="x")
        with pytest.raises(ValueError):
            check_positive_int(2.5, name="x")
