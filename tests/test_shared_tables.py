"""Shared-histogram Huffman mode: wire format, TAC integration, serving.

One code table per TAC level (``L<idx>/table`` container part), referenced
by every stream through a fixed-size ``SEC_TABLE_REF`` section.  The tests
pin the three layers:

* the standalone table part format (``RPHT``) and the reference section
  round-trip and fail loudly on corruption;
* TAC writes/reads the mode end-to-end — bit-identical reconstruction
  against per-stream mode, deterministic bytes under ``level_workers``,
  pruned ROI reads fetch only the table plus the touched bricks, and the
  table part is resolved exactly once no matter how many decode workers
  share it;
* the serving layer (:class:`repro.serve.reader.ArchiveReader`) resolves
  the cached table concurrently without tearing.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.container import (
    MASK_PREFIX,
    LazyCompressedDataset,
    collapse_part_sizes,
)
from repro.core.tac import TACCompressor
from repro.sz import stream
from repro.sz.compressor import SharedTableResolver, SZCompressor
from repro.sz.huffman import SharedHuffmanTable
from tests.helpers import golden_gsp_dataset

EB = 1e-3
ROI = (slice(0, 8), slice(0, 8), slice(0, 8))


@pytest.fixture(scope="module")
def dataset():
    return golden_gsp_dataset()


@pytest.fixture(scope="module")
def shared_comp(dataset):
    return TACCompressor(brick_size=4, shared_tables=True).compress(
        dataset, EB, mode="abs"
    )


class TestTableWireFormat:
    def test_table_ref_round_trip(self):
        raw = stream.pack_table_ref(0xDEADBEEF, 8193)
        assert len(raw) == 8
        assert stream.unpack_table_ref(raw) == {
            "table_id": 0xDEADBEEF,
            "alphabet": 8193,
        }

    def test_table_ref_rejects_bad_length(self):
        with pytest.raises(ValueError, match="malformed table reference"):
            stream.unpack_table_ref(b"\x00" * 7)

    def test_shared_table_round_trip(self):
        lengths = np.array([0, 3, 3, 2, 2, 4, 4, 0, 1], dtype=np.uint8)
        blob = stream.pack_shared_table(lengths, max_len=4)
        table = stream.unpack_shared_table(blob)
        assert np.array_equal(table["code_lengths"], lengths)
        assert table["max_len"] == 4
        assert table["alphabet"] == lengths.size
        assert table["table_id"] == stream.shared_table_id(lengths.tobytes())

    def test_shared_table_rejects_bad_magic(self):
        blob = stream.pack_shared_table(np.ones(4, dtype=np.uint8), max_len=1)
        with pytest.raises(ValueError, match="bad magic"):
            stream.unpack_shared_table(b"XXXX" + blob[4:])

    def test_shared_table_rejects_bad_version(self):
        blob = stream.pack_shared_table(np.ones(4, dtype=np.uint8), max_len=1)
        bad = blob[:4] + bytes([stream.TABLE_VERSION + 1]) + blob[5:]
        with pytest.raises(ValueError, match="unsupported shared-table version"):
            stream.unpack_shared_table(bad)

    def test_shared_table_rejects_truncation(self):
        blob = stream.pack_shared_table(np.ones(64, dtype=np.uint8), max_len=1)
        with pytest.raises(ValueError, match="truncated"):
            stream.unpack_shared_table(blob[:-1])
        with pytest.raises(ValueError, match="too short"):
            stream.unpack_shared_table(blob[:8])

    def test_shared_table_detects_corrupt_payload(self):
        # Flip a bit in the stored (raw-codec) length bytes: the CRC in
        # the header no longer matches.
        lengths = np.arange(1, 9, dtype=np.uint8)
        blob = bytearray(stream.pack_shared_table(lengths, max_len=8))
        blob[-1] ^= 0x01
        with pytest.raises(ValueError, match="checksum mismatch"):
            stream.unpack_shared_table(bytes(blob))

    def test_resolver_validates_reference(self):
        table = SharedHuffmanTable.from_counts(np.array([5, 3, 2, 1, 1]))
        resolver = SharedTableResolver({"t": table.serialize()}, "t")
        good = {"table_id": table.table_id, "alphabet": table.alphabet}
        assert np.array_equal(
            resolver.resolve(good)["code_lengths"], table.codec.lengths
        )
        with pytest.raises(ValueError, match="table id"):
            resolver.resolve({"table_id": table.table_id ^ 1, "alphabet": table.alphabet})
        with pytest.raises(ValueError, match="alphabet"):
            resolver.resolve({"table_id": table.table_id, "alphabet": table.alphabet + 1})


class TestSZSharedEncode:
    def _streams(self):
        rng = np.random.default_rng(7)
        base = rng.normal(size=(6, 512)).astype(np.float64)
        # Correlated streams: the regime where one table fits all.
        return [np.cumsum(row).reshape(8, 8, 8) for row in base]

    def test_encode_prepared_matches_compress(self):
        sz = SZCompressor()
        for arr in self._streams():
            prepared = sz.prepare(arr, 1e-3)
            assert sz.encode_prepared(prepared) == sz.compress(arr, 1e-3)

    def test_shared_streams_decode_identically(self):
        sz = SZCompressor()
        arrays = self._streams()
        prepared = [sz.prepare(a, 1e-3) for a in arrays]
        total = np.zeros(max(p.counts.size for p in prepared), dtype=np.int64)
        for p in prepared:
            total[: p.counts.size] += p.counts
        shared = SharedHuffmanTable.from_counts(total)
        resolver = SharedTableResolver({"t": shared.serialize()}, "t")
        for arr, prep in zip(arrays, prepared):
            blob = sz.encode_prepared(prep, shared=shared)
            sizes = stream.parse(blob).section_sizes()
            assert stream.SEC_CODE_LENGTHS not in sizes
            assert sizes[stream.SEC_TABLE_REF] == 8
            out_shared = sz.decompress(blob, shared_tables=resolver)
            out_per = sz.decompress(sz.compress(arr, 1e-3))
            assert np.array_equal(out_shared, out_per)

    def test_shared_blob_without_resolver_fails_loudly(self):
        sz = SZCompressor()
        arr = self._streams()[0]
        prep = sz.prepare(arr, 1e-3)
        shared = SharedHuffmanTable.from_counts(prep.counts)
        blob = sz.encode_prepared(prep, shared=shared)
        with pytest.raises(ValueError, match="no shared-table resolver"):
            sz.decompress(blob)

    def test_prepare_rejects_pw_rel(self):
        with pytest.raises(ValueError, match="pw_rel"):
            SZCompressor().prepare(np.ones((4, 4, 4)), 1e-3, mode="pw_rel")


class TestTACSharedMode:
    def test_bit_identical_to_per_stream_decode(self, dataset, shared_comp):
        per = TACCompressor(brick_size=4)
        out_per = per.decompress(per.compress(dataset, EB, mode="abs"))
        out_shared = TACCompressor(brick_size=4, shared_tables=True).decompress(
            shared_comp
        )
        for a, b in zip(out_per.levels, out_shared.levels):
            assert np.array_equal(a.data, b.data)
            assert np.array_equal(a.mask, b.mask)

    def test_writes_one_table_part_per_entropy_level(self, shared_comp):
        tables = [n for n in shared_comp.parts if n.endswith("/table")]
        metas = [m for m in shared_comp.meta["levels"] if "shared_table" in m]
        assert tables and len(tables) == len(metas)
        for meta in metas:
            info = meta["shared_table"]
            table = stream.unpack_shared_table(shared_comp.parts[info["part"]])
            assert table["table_id"] == info["id"]
            assert table["alphabet"] == info["alphabet"]

    def test_level_workers_bytes_match_serial(self, dataset):
        tac = TACCompressor(brick_size=4, shared_tables=True)
        serial = tac.compress(dataset, EB, mode="abs", level_workers=1)
        threaded = tac.compress(dataset, EB, mode="abs", level_workers=4)
        assert serial.to_bytes() == threaded.to_bytes()

    def test_decode_workers_match_serial(self, shared_comp):
        tac = TACCompressor(brick_size=4, shared_tables=True)
        serial = tac.decompress(shared_comp, decode_workers=1)
        threaded = tac.decompress(shared_comp, decode_workers=4)
        for a, b in zip(serial.levels, threaded.levels):
            assert np.array_equal(a.data, b.data)

    def test_default_config_reader_decodes_shared_blob(self, shared_comp, dataset):
        """Reading never depends on the writer's config: the resolver comes
        from the blob's level meta."""
        restored = TACCompressor().decompress(
            LazyCompressedDataset.open(shared_comp.to_bytes())
        )
        reference = TACCompressor(brick_size=4, shared_tables=True).decompress(
            shared_comp
        )
        for a, b in zip(restored.levels, reference.levels):
            assert np.array_equal(a.data, b.data)

    def test_roi_fetches_table_plus_touched_bricks_only(self, shared_comp):
        tac = TACCompressor(brick_size=4, shared_tables=True)
        lazy = LazyCompressedDataset.open(shared_comp.to_bytes())
        region = tac.decompress_region(lazy, 0, ROI, decode_workers=4)
        full = tac.decompress(shared_comp)
        assert np.array_equal(region, full.levels[0].data[ROI])

        accessed = {
            n for n in lazy.parts.accessed() if not n.startswith(MASK_PREFIX)
        }
        bricks = {n for n in accessed if n.startswith("L0/b") and n != "L0/bricks"}
        # The bricks index is parsed at plan time (before the logged ROI
        # fetches); the payload reads are exactly the table + the bricks.
        assert accessed - {"L0/bricks"} == bricks | {"L0/table"}
        assert len(bricks) == 8  # 1/8-domain ROI on the 4^3 brick grid
        # The table part is fetched exactly once, not once per worker.
        assert lazy.parts.access_counts["L0/table"] == 1

    def test_collapse_groups_table_parts(self, shared_comp):
        labels = [label for label, _count, _size in collapse_part_sizes(shared_comp.part_sizes())]
        n_tables = sum(1 for n in shared_comp.parts if n.endswith("/table"))
        assert n_tables >= 2
        assert f"L*/table x{n_tables}" in labels
        assert not any(label.endswith("/table") for label in labels)

    def test_collapse_keeps_single_table_raw(self):
        labels = [label for label, _c, _s in collapse_part_sizes({"L0/table": 64, "L0/grid": 256})]
        assert "L0/table" in labels


class TestServeSharedTables:
    @pytest.fixture(scope="class")
    def archive_path(self, tmp_path_factory):
        from repro.engine import CompressionEngine, CompressionJob

        job = CompressionJob(
            golden_gsp_dataset(),
            codec="tac",
            error_bound=EB,
            mode="abs",
            label="gsp/shared",
            codec_options={"shared_tables": True, "brick_size": 4},
        )
        archive = CompressionEngine().run_to_archive([job])
        path = tmp_path_factory.mktemp("serve") / "shared.rpbt"
        path.write_bytes(archive.to_bytes())
        return path

    def test_concurrent_roi_reads_match_serial(self, archive_path, dataset):
        """Satellite stress: many threads resolve the cached shared table
        concurrently through the read service; every ROI must match the
        serial single-codec reference."""
        from repro.serve.reader import ArchiveReader

        tac = TACCompressor(brick_size=4, shared_tables=True)
        blob = archive_path.read_bytes()
        rois = [
            (slice(x, x + 8), slice(y, y + 8), slice(0, 16))
            for x in (0, 4, 8) for y in (0, 4, 8)
        ]
        reference = {}
        for i, roi in enumerate(rois):
            from repro.engine import BatchArchive

            comp = BatchArchive.from_bytes(blob).get("gsp/shared")
            reference[i] = tac.decompress_region(comp, 0, roi)

        results: dict[int, np.ndarray] = {}
        errors: list[BaseException] = []
        with ArchiveReader(archive_path, decode_workers=2, request_workers=4) as reader:
            barrier = threading.Barrier(len(rois))

            def worker(i, roi):
                try:
                    barrier.wait(timeout=30)
                    data, _stats = reader.read_region("gsp/shared", 0, roi)
                    results[i] = data
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i, roi))
                for i, roi in enumerate(rois)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert not errors, errors
        assert len(results) == len(rois)
        for i in range(len(rois)):
            assert np.array_equal(results[i], reference[i])


class TestCLISharedTables:
    def test_compress_inspect_decompress(self, tmp_path, capsys):
        from repro.cli import main

        ds = tmp_path / "ds.npz"
        archive = tmp_path / "ds.tac"
        out = tmp_path / "back.npz"
        assert main(["make", "Run1_Z10", "-o", str(ds), "--scale", "8"]) == 0
        assert main([
            "compress", str(ds), "-o", str(archive),
            "--eb", "1e-3", "--method", "tac",
            "--brick-size", "4", "--shared-tables",
        ]) == 0
        capsys.readouterr()
        assert main(["inspect", str(archive)]) == 0
        shown = capsys.readouterr().out
        assert "shared table 0x" in shown
        assert main(["decompress", str(archive), "-o", str(out)]) == 0
