"""Engine, registry, and batch-archive unit tests.

The concurrency contracts under test:

* serial (``max_workers=1``) and parallel (``max_workers=4``) runs are
  **bit-identical**, including TAC's within-job level parallelism;
* one failing job surfaces its exception in its own ``JobResult`` and the
  rest of the batch completes;
* timing records aggregate across jobs (sum of per-job spans).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.container import CompressedDataset, resolve_global_eb
from repro.core.tac import TACCompressor
from repro.engine import (
    BatchArchive,
    CompressionEngine,
    CompressionJob,
    codec_for_method,
    codec_names,
    get_codec,
    get_spec,
    register,
    unregister,
)
from repro.amr.io import save_dataset
from repro.utils.timer import TimingRecord
from tests.helpers import assert_error_bounded, two_level_dataset

EB = 1e-3


@pytest.fixture(scope="module")
def batch_jobs():
    """Four two-level fields × two codecs = 8 independent jobs."""
    datasets = [two_level_dataset(n=16, fine_fraction=0.3, seed=s) for s in range(4)]
    return [
        CompressionJob(ds, codec=codec, error_bound=EB, label=f"f{i}/{codec}")
        for i, ds in enumerate(datasets)
        for codec in ("tac", "1d")
    ]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_names_and_aliases(self):
        assert {"tac", "tac-hybrid", "1d", "zmesh", "3d"} <= set(codec_names())
        # The experiments' historical spellings resolve to the same codecs.
        assert type(get_codec("baseline_1d")) is type(get_codec("1d"))
        assert type(get_codec("baseline_3d")) is type(get_codec("3d"))

    def test_get_codec_returns_fresh_instances(self):
        assert get_codec("tac") is not get_codec("tac")

    def test_factory_options_forwarded(self):
        codec = get_codec("tac", unit_block=8)
        assert codec.config.unit_block == 8

    def test_brick_size_flows_through_job_codec_options(self):
        """Engine plumbing for the GSP brick knob: a job's codec_options
        reach the TAC factory, and the resulting archive entry carries the
        bricked (or legacy) wire layout accordingly."""
        from repro.core.density import Strategy
        from tests.helpers import golden_gsp_dataset

        ds = golden_gsp_dataset()
        jobs = [
            CompressionJob(
                ds, codec="tac", error_bound=1e-3, mode="abs", label="bricked",
                codec_options={"brick_size": 4, "force_strategy": Strategy.GSP},
            ),
            CompressionJob(
                ds, codec="tac", error_bound=1e-3, mode="abs", label="legacy",
                codec_options={"brick_size": None, "force_strategy": Strategy.GSP},
            ),
        ]
        batch = CompressionEngine(max_workers=2).run(jobs, raise_errors=True)
        bricked, legacy = (r.compressed for r in batch)
        assert bricked.meta["levels"][0]["bricks"]["size"] == 4
        assert any(name.startswith("L0/b") for name in bricked.parts)
        assert "bricks" not in legacy.meta["levels"][0]
        assert "L0/grid" in legacy.parts

    def test_method_resolution_prefers_plain_tac(self):
        codec = codec_for_method("tac")
        assert isinstance(codec, TACCompressor)
        assert not codec.config.adaptive_baseline

    def test_unknown_names_raise_with_listing(self):
        with pytest.raises(KeyError, match="registered"):
            get_codec("nope")
        with pytest.raises(KeyError, match="known methods"):
            codec_for_method("nope")

    def test_duplicate_registration_rejected_then_replaceable(self):
        with pytest.raises(ValueError, match="already registered"):
            register("tac", TACCompressor)

    def test_register_decorator_and_unregister(self):
        @register("fake-codec", method_name="fake", description="test only")
        class FakeCodec:
            method_name = "fake"

        try:
            assert isinstance(get_codec("fake-codec"), FakeCodec)
            assert get_spec("fake-codec").description == "test only"
        finally:
            unregister("fake-codec")
        with pytest.raises(KeyError):
            get_codec("fake-codec")


# ----------------------------------------------------------------------
# engine determinism
# ----------------------------------------------------------------------
class TestEngineDeterminism:
    def test_parallel_bit_identical_to_serial(self, batch_jobs):
        serial = CompressionEngine(max_workers=1).run(batch_jobs)
        parallel = CompressionEngine(max_workers=4).run(batch_jobs)
        assert [r.label for r in serial] == [r.label for r in parallel]
        for a, b in zip(serial, parallel):
            assert a.ok and b.ok
            assert a.compressed.to_bytes() == b.compressed.to_bytes()

    def test_level_parallel_tac_bit_identical(self, batch_jobs):
        serial = CompressionEngine(max_workers=1).run(batch_jobs)
        nested = CompressionEngine(max_workers=4, level_workers=4).run(batch_jobs)
        for a, b in zip(serial, nested):
            assert a.compressed.to_bytes() == b.compressed.to_bytes()

    def test_process_executor_bit_identical(self, batch_jobs):
        serial = CompressionEngine(max_workers=1).run(batch_jobs[:2])
        procs = CompressionEngine(max_workers=2, executor="process").run(batch_jobs[:2])
        for a, b in zip(serial, procs):
            assert a.compressed.to_bytes() == b.compressed.to_bytes()

    def test_results_keep_submission_order(self, batch_jobs):
        batch = CompressionEngine(max_workers=4).run(batch_jobs)
        assert [r.index for r in batch] == list(range(len(batch_jobs)))
        assert [r.label for r in batch] == [j.label for j in batch_jobs]

    def test_path_inputs_load_in_workers_bit_identical(self, tmp_path):
        ds = two_level_dataset(n=16, fine_fraction=0.3, seed=1)
        path = tmp_path / "toy.npz"
        save_dataset(ds, path)
        direct = CompressionEngine().run(
            [CompressionJob(ds, codec="tac", error_bound=EB)]
        )
        via_path = CompressionEngine(max_workers=2).run(
            [CompressionJob(path, codec="tac", error_bound=EB)]
        )
        assert via_path.results[0].label == "toy/tac"
        assert (
            direct.results[0].compressed.to_bytes()
            == via_path.results[0].compressed.to_bytes()
        )

    def test_duplicate_labels_get_unique_suffixes(self):
        ds = two_level_dataset(n=8)
        jobs = [CompressionJob(ds, codec="1d", error_bound=EB) for _ in range(3)]
        batch = CompressionEngine().run(jobs)
        labels = [r.label for r in batch]
        assert len(set(labels)) == 3
        assert labels[0] == jobs[0].resolved_label()


# ----------------------------------------------------------------------
# failure isolation
# ----------------------------------------------------------------------
class TestFailureIsolation:
    def test_one_bad_job_does_not_poison_the_batch(self):
        good = two_level_dataset(n=8)
        jobs = [
            CompressionJob(good, codec="1d", error_bound=EB, label="ok-1"),
            # zMesh rejects per-level bounds -> deterministic ValueError.
            CompressionJob(
                good, codec="zmesh", error_bound=EB,
                per_level_scale=[2.0, 1.0], label="bad",
            ),
            CompressionJob(good, codec="1d", error_bound=EB, label="ok-2"),
        ]
        for workers in (1, 4):
            batch = CompressionEngine(max_workers=workers).run(jobs)
            assert [r.ok for r in batch] == [True, False, True]
            failed = batch.results[1]
            assert isinstance(failed.error, ValueError)
            assert "per-level" in str(failed.error)
            assert failed.compressed is None
            assert {r.label for r in batch.ok} == {"ok-1", "ok-2"}

    def test_missing_path_input_fails_only_its_job(self, tmp_path):
        jobs = [
            CompressionJob(two_level_dataset(n=8), codec="1d", error_bound=EB),
            CompressionJob(tmp_path / "nope.npz", codec="1d", error_bound=EB),
        ]
        batch = CompressionEngine(max_workers=2).run(jobs)
        assert [r.ok for r in batch] == [True, False]
        assert isinstance(batch.results[1].error, FileNotFoundError)

    def test_raise_errors_chains_the_cause(self):
        jobs = [
            CompressionJob(
                two_level_dataset(n=8), codec="zmesh",
                error_bound=EB, per_level_scale=[2.0, 1.0],
            )
        ]
        with pytest.raises(RuntimeError, match="failed") as excinfo:
            CompressionEngine().run(jobs, raise_errors=True)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_to_archive_refuses_partial_batches(self):
        jobs = [
            CompressionJob(two_level_dataset(n=8), codec="1d", error_bound=EB),
            CompressionJob(
                two_level_dataset(n=8), codec="zmesh",
                error_bound=EB, per_level_scale=[2.0, 1.0],
            ),
        ]
        batch = CompressionEngine().run(jobs)
        with pytest.raises(RuntimeError):
            batch.to_archive()

    def test_invalid_engine_parameters(self):
        with pytest.raises(ValueError):
            CompressionEngine(max_workers=0)
        with pytest.raises(ValueError):
            CompressionEngine(executor="fork-bomb")
        with pytest.raises(ValueError):
            CompressionEngine(level_workers=-1)


# ----------------------------------------------------------------------
# timing aggregation
# ----------------------------------------------------------------------
class TestTimingAggregation:
    def test_batch_timings_sum_per_job_spans(self, batch_jobs):
        batch = CompressionEngine(max_workers=2).run(batch_jobs)
        merged = batch.timings()
        assert isinstance(merged, TimingRecord)
        assert merged.get("compress") > 0.0
        for span, total in merged.spans.items():
            by_hand = sum(r.timings.get(span) for r in batch.ok)
            assert total == pytest.approx(by_hand)

    def test_wall_and_per_job_seconds_recorded(self, batch_jobs):
        batch = CompressionEngine(max_workers=2).run(batch_jobs)
        assert batch.wall_seconds > 0.0
        assert all(r.wall_seconds > 0.0 for r in batch.ok)

    def test_summary_rows_cover_success_and_failure(self):
        jobs = [
            CompressionJob(two_level_dataset(n=8), codec="1d", error_bound=EB),
            CompressionJob(
                two_level_dataset(n=8), codec="zmesh",
                error_bound=EB, per_level_scale=[2.0, 1.0],
            ),
        ]
        rows = CompressionEngine().run(jobs).summary_rows()
        assert rows[0]["error"] is None and rows[0]["ratio"] > 0
        assert rows[1]["error"] is not None and rows[1]["ratio"] is None


# ----------------------------------------------------------------------
# batch archive
# ----------------------------------------------------------------------
class TestBatchArchive:
    def test_roundtrip_and_registry_decompression(self, batch_jobs):
        batch = CompressionEngine(max_workers=2).run(batch_jobs)
        archive = batch.to_archive(purpose="test")
        blob = archive.to_bytes()
        loaded = BatchArchive.from_bytes(blob)
        assert loaded.keys() == sorted(archive.keys())
        assert loaded.meta == {"purpose": "test"}
        assert loaded.to_bytes() == blob  # byte-stable re-serialization

        job = batch_jobs[0]
        restored = loaded.decompress(job.label)
        original = job.dataset
        eb_abs = EB * resolve_global_eb(original, 1.0, "rel")
        for orig, back in zip(original.levels, restored.levels):
            assert np.array_equal(orig.mask, back.mask)
            assert_error_bounded(orig.values(), back.values(), eb_abs)

    def test_duplicate_and_missing_keys(self):
        archive = BatchArchive()
        comp = CompressedDataset(method="tac", dataset_name="x")
        archive.add("a", comp)
        with pytest.raises(ValueError, match="duplicate"):
            archive.add("a", comp)
        with pytest.raises(KeyError, match="no entry"):
            archive.get("b")

    def test_rejects_foreign_blobs(self):
        with pytest.raises(ValueError, match="not a BatchArchive"):
            BatchArchive.from_bytes(b"junkjunkjunk")

    def test_save_load_and_accounting(self, tmp_path, batch_jobs):
        archive = CompressionEngine().run(batch_jobs[:2]).to_archive()
        path = tmp_path / "batch.rpbt"
        n = archive.save(path)
        assert path.stat().st_size == n
        loaded = BatchArchive.load(path)
        assert loaded.total_compressed_bytes() == archive.total_compressed_bytes()
        assert loaded.ratio() == pytest.approx(archive.ratio())
        assert len(loaded.manifest()) == 2
