"""Container v2/v3 + lazy-reader unit tests.

Contracts under test:

* v2 blobs round-trip (``to_bytes → from_bytes → to_bytes`` byte-stable)
  and v1 writing is still available (``container_version=1``), also
  byte-stable — mixed-version batch archives included;
* v3 (index-at-tail, the streaming layout) round-trips byte-stably too,
  eager and lazy, standalone and embedded in an archive;
* :class:`LazyCompressedDataset` opens bytes, files, and archive members
  without reading any payload, serves parts on demand, and logs every
  fetch (the accounting partial-decode proofs rely on);
* corrupt/truncated inputs fail loudly, not with garbage data — and
  lazy-read failures carry the container path and part name
  (:class:`ContainerIOError`).
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.container import (
    CompressedDataset,
    ContainerIOError,
    LazyCompressedDataset,
    make_source,
    pack_mask,
)
from repro.engine import BatchArchive, LazyBatchArchive
from tests.helpers import two_level_dataset


@pytest.fixture(scope="module")
def sample() -> CompressedDataset:
    comp = CompressedDataset(
        method="tac",
        dataset_name="toy",
        meta={"shapes": [[4, 4, 4]], "levels": []},
        original_bytes=1024,
        n_values=64,
    )
    comp.parts["L0/layout"] = b"layout-bytes"
    comp.parts["L0/g0"] = b"group-zero-payload"
    comp.parts["mask/L0"] = pack_mask(np.ones((4, 4, 4), dtype=bool))
    return comp


class TestContainerV2:
    def test_v2_roundtrip_byte_stable(self, sample):
        blob = sample.to_bytes()
        back = CompressedDataset.from_bytes(blob)
        assert back.container_version == 2
        assert back.parts == sample.parts
        assert back.meta == sample.meta
        assert back.to_bytes() == blob

    def test_v1_still_writable_and_byte_stable(self, sample):
        sample_v1 = CompressedDataset(
            method=sample.method,
            dataset_name=sample.dataset_name,
            parts=dict(sample.parts),
            meta=sample.meta,
            original_bytes=sample.original_bytes,
            n_values=sample.n_values,
            container_version=1,
        )
        blob = sample_v1.to_bytes()
        back = CompressedDataset.from_bytes(blob)
        assert back.container_version == 1
        assert back.parts == sample.parts
        assert back.to_bytes() == blob

    def test_versions_carry_identical_parts(self, sample):
        v2 = sample.to_bytes()
        sample_v1 = CompressedDataset.from_bytes(v2)
        sample_v1.container_version = 1
        v1 = sample_v1.to_bytes()
        assert v1 != v2
        assert CompressedDataset.from_bytes(v1).parts == CompressedDataset.from_bytes(v2).parts

    def test_unknown_version_rejected(self, sample):
        blob = bytearray(sample.to_bytes())
        blob[4] = 99
        with pytest.raises(ValueError, match="unsupported container version"):
            CompressedDataset.from_bytes(bytes(blob))
        with pytest.raises(ValueError, match="unsupported container version"):
            CompressedDataset(method="x", dataset_name="y", container_version=7).to_bytes()

    def test_trailing_bytes_rejected(self, sample):
        with pytest.raises(ValueError, match="trailing"):
            CompressedDataset.from_bytes(sample.to_bytes() + b"extra")

    def test_foreign_blob_rejected(self):
        with pytest.raises(ValueError, match="not a CompressedDataset"):
            CompressedDataset.from_bytes(b"JUNKJUNKJUNKJUNK")


class TestContainerV3:
    def test_v3_roundtrip_byte_stable(self, sample):
        comp = CompressedDataset.from_bytes(sample.to_bytes())
        comp.container_version = 3
        blob = comp.to_bytes()
        back = CompressedDataset.from_bytes(blob)
        assert back.container_version == 3
        assert back.parts == sample.parts
        assert back.meta == sample.meta
        assert back.to_bytes() == blob

    def test_all_versions_carry_identical_parts(self, sample):
        blobs = {}
        for version in (1, 2, 3):
            comp = CompressedDataset.from_bytes(sample.to_bytes())
            comp.container_version = version
            blobs[version] = comp.to_bytes()
        assert len(set(blobs.values())) == 3  # framing differs
        parsed = {v: CompressedDataset.from_bytes(b).parts for v, b in blobs.items()}
        assert parsed[1] == parsed[2] == parsed[3]

    def test_v3_trailing_bytes_rejected(self, sample):
        comp = CompressedDataset.from_bytes(sample.to_bytes())
        comp.container_version = 3
        with pytest.raises(ValueError, match="trailing"):
            CompressedDataset.from_bytes(comp.to_bytes() + b"extra")

    def test_v3_truncated_blob_fails_at_open(self, sample):
        """The tail index is the last thing written: a truncated v3 blob
        cannot even open, rather than serving a partial part set."""
        comp = CompressedDataset.from_bytes(sample.to_bytes())
        comp.container_version = 3
        with pytest.raises(ValueError):
            LazyCompressedDataset.open(comp.to_bytes()[:-10]).parts["mask/L0"]

    def test_v3_overstated_part_length_rejected(self, sample):
        """A tampered tail index whose part overlaps the index region must
        fail loudly, not serve a silently truncated payload."""
        import struct

        comp = CompressedDataset.from_bytes(sample.to_bytes())
        comp.container_version = 3
        blob = bytearray(comp.to_bytes())
        index_off, index_len = struct.unpack_from("<QQ", blob, 13)
        import json

        index = json.loads(bytes(blob[index_off : index_off + index_len]))
        index[0][2] += 1000
        new_index = json.dumps(index, sort_keys=True).encode("utf-8")
        tampered = blob[:index_off] + new_index
        struct.pack_into("<QQ", tampered, 13, index_off, len(new_index))
        with pytest.raises(ValueError, match="payload region"):
            CompressedDataset.from_bytes(bytes(tampered))
        with pytest.raises(ValueError, match="payload region"):
            LazyCompressedDataset.open(bytes(tampered))

    def test_v3_entries_inside_batch_archive(self, sample):
        archive = BatchArchive(meta={"mixed": True})
        v3_entry = CompressedDataset.from_bytes(sample.to_bytes())
        v3_entry.container_version = 3
        archive.add("toy/v3", v3_entry)
        archive.add("toy/v2", CompressedDataset.from_bytes(sample.to_bytes()))
        blob = archive.to_bytes()
        back = BatchArchive.from_bytes(blob)
        assert back.get("toy/v3").container_version == 3
        assert back.get("toy/v2").container_version == 2
        assert back.to_bytes() == blob
        with LazyBatchArchive.open(blob) as lazy:
            entry = lazy.entry("toy/v3")
            assert entry.container_version == 3
            assert entry.parts["L0/g0"] == sample.parts["L0/g0"]


class TestContainerIOErrors:
    def test_missing_file_names_path(self, tmp_path):
        missing = tmp_path / "nope" / "gone.rpam"
        with pytest.raises(ContainerIOError, match="gone.rpam"):
            make_source(missing)
        with pytest.raises(OSError):
            LazyCompressedDataset.open(missing)

    def test_part_read_failure_names_part_and_source(self, sample, tmp_path):
        path = tmp_path / "cut.rpam"
        path.write_bytes(sample.to_bytes()[:-5])
        lazy = LazyCompressedDataset.open(path)
        with pytest.raises(ContainerIOError) as excinfo:
            lazy.parts["mask/L0"]
        message = str(excinfo.value)
        assert "mask/L0" in message
        assert "cut.rpam" in message
        # Both historical except clauses keep catching it.
        assert isinstance(excinfo.value, OSError)
        assert isinstance(excinfo.value, ValueError)


class TestLazyCompressedDataset:
    @pytest.fixture(scope="class", params=[1, 2, 3], ids=["v1", "v2", "v3"])
    def blob(self, request, sample):
        comp = CompressedDataset.from_bytes(sample.to_bytes())
        comp.container_version = request.param
        return comp.to_bytes()

    def test_header_without_payload_reads(self, blob, sample):
        lazy = LazyCompressedDataset.open(blob)
        assert lazy.method == "tac"
        assert lazy.dataset_name == "toy"
        assert lazy.meta == sample.meta
        assert lazy.part_sizes() == sample.part_sizes()
        assert lazy.compressed_bytes() == sample.compressed_bytes()
        assert lazy.compressed_bytes(include_masks=False) == sample.compressed_bytes(
            include_masks=False
        )
        assert "L0/g0" in lazy.parts  # membership probes read nothing
        assert lazy.parts.accessed() == set()
        assert lazy.parts.bytes_read == 0

    def test_parts_served_on_demand_and_logged(self, blob, sample):
        lazy = LazyCompressedDataset.open(blob)
        assert lazy.parts["L0/g0"] == sample.parts["L0/g0"]
        assert lazy.parts.accessed() == {"L0/g0"}
        assert lazy.parts.bytes_read == len(sample.parts["L0/g0"])
        assert lazy.parts["L0/g0"] == sample.parts["L0/g0"]
        assert lazy.parts.access_counts["L0/g0"] == 2
        lazy.parts.reset_access_log()
        assert lazy.parts.n_reads == 0

    def test_materialize_matches_eager(self, blob):
        lazy = LazyCompressedDataset.open(blob)
        eager = CompressedDataset.from_bytes(blob)
        materialized = lazy.materialize()
        assert materialized.parts == eager.parts
        assert materialized.to_bytes() == blob

    def test_open_from_file_and_fileobj(self, blob, tmp_path):
        path = tmp_path / "blob.rpam"
        path.write_bytes(blob)
        with LazyCompressedDataset.open(path) as lazy:
            assert lazy.parts["L0/layout"] == b"layout-bytes"
        with LazyCompressedDataset.open(io.BytesIO(blob)) as lazy:
            assert lazy.parts["L0/layout"] == b"layout-bytes"

    def test_unknown_part_raises(self, blob):
        lazy = LazyCompressedDataset.open(blob)
        with pytest.raises(KeyError):
            lazy.parts["nope"]

    def test_truncated_blob_fails_loudly(self, blob):
        if blob[4] == 3:
            # v3 keeps its index at the tail: truncation fails at open.
            with pytest.raises(ValueError, match="read past end|short read"):
                LazyCompressedDataset.open(blob[:-5])
            return
        lazy = LazyCompressedDataset.open(blob[:-5])
        with pytest.raises(ValueError, match="read past end|short read"):
            lazy.parts["mask/L0"]  # last part's payload is cut off

    def test_unsupported_source_type(self):
        with pytest.raises(TypeError, match="byte source"):
            LazyCompressedDataset.open(12345)


class TestArchiveVersions:
    @pytest.fixture(scope="class")
    def archive(self) -> BatchArchive:
        ds = two_level_dataset(n=8, fine_fraction=0.3, seed=3)
        from repro.engine import get_codec

        archive = BatchArchive(meta={"purpose": "v2-test"})
        for codec_name in ("tac", "1d"):
            comp = get_codec(codec_name).compress(ds, 1e-3, mode="abs")
            archive.add(f"toy/{codec_name}", comp)
        return archive

    def test_v2_roundtrip_byte_stable(self, archive):
        blob = archive.to_bytes()
        back = BatchArchive.from_bytes(blob)
        assert back.version == 2
        assert back.to_bytes() == blob

    def test_v1_roundtrip_byte_stable(self, archive):
        archive_v1 = BatchArchive.from_bytes(archive.to_bytes())
        archive_v1.version = 1
        for comp in archive_v1.entries.values():
            comp.container_version = 1
        blob = archive_v1.to_bytes()
        back = BatchArchive.from_bytes(blob)
        assert back.version == 1
        assert back.to_bytes() == blob

    def test_mixed_entry_versions_roundtrip(self, archive):
        mixed = BatchArchive.from_bytes(archive.to_bytes())
        mixed.get("toy/1d").container_version = 1
        blob = mixed.to_bytes()
        back = BatchArchive.from_bytes(blob)
        assert back.get("toy/1d").container_version == 1
        assert back.get("toy/tac").container_version == 2
        assert back.to_bytes() == blob

    def test_lazy_open_both_versions(self, archive):
        for version in (1, 2):
            eager = BatchArchive.from_bytes(archive.to_bytes())
            eager.version = version
            for comp in eager.entries.values():
                comp.container_version = version
            blob = eager.to_bytes()
            with LazyBatchArchive.open(blob) as lazy:
                assert lazy.version == version
                assert sorted(lazy.keys()) == sorted(eager.keys())
                entry = lazy.entry("toy/tac")
                assert entry.part_sizes() == eager.get("toy/tac").part_sizes()
                restored = lazy.decompress("toy/tac")
                reference = eager.decompress("toy/tac")
                for a, b in zip(reference.levels, restored.levels):
                    assert np.array_equal(a.data, b.data)

    def test_lazy_missing_entry(self, archive):
        with LazyBatchArchive.open(archive.to_bytes()) as lazy:
            with pytest.raises(KeyError, match="no entry"):
                lazy.entry("nope")

    def test_lazy_rejects_foreign_blobs(self):
        with pytest.raises(ValueError, match="not a BatchArchive"):
            LazyBatchArchive.open(b"junkjunkjunkjunk")

    def test_partial_reads_reject_non_partial_codecs(self, archive):
        """A Codec-protocol-only downstream codec fails with a clear
        error on decompress_level and degrades to serial on workers."""
        from repro.amr.hierarchy import AMRDataset
        from repro.core.container import CompressedDataset
        from repro.engine import register, unregister

        @register("blobonly", method_name="blobonly", description="test only")
        class BlobOnlyCodec:
            method_name = "blobonly"

            def compress(self, dataset, error_bound, mode="rel"):
                raise NotImplementedError

            def decompress(self, comp, structure=None):
                import numpy as _np
                from repro.amr.hierarchy import AMRLevel

                shape = tuple(comp.meta["shapes"][0])
                lvl = AMRLevel(
                    data=_np.zeros(shape, dtype=_np.float32),
                    mask=_np.ones(shape, dtype=bool),
                    level=0,
                )
                return AMRDataset(levels=[lvl], name="blob")

        try:
            stored = BatchArchive(meta={})
            stored.add(
                "x",
                CompressedDataset(
                    method="blobonly", dataset_name="x",
                    meta={"shapes": [[4, 4, 4]]},
                ),
            )
            # decode_workers degrades to the serial path, no TypeError.
            restored = stored.decompress("x", decode_workers=4)
            assert restored.n_levels == 1
            with pytest.raises(TypeError, match="partial"):
                stored.decompress_level("x", 0)
        finally:
            unregister("blobonly")

    def test_entry_sizes_match_manifest(self, archive):
        blob = archive.to_bytes()
        with LazyBatchArchive.open(blob) as lazy:
            sizes = lazy.entry_sizes()
            for key in archive.keys():
                assert sizes[key] == len(archive.get(key).to_bytes())


class TestCollapsePartSizes:
    """Display aggregation of numbered sibling parts (brick/group streams)."""

    def test_numbered_runs_collapse_above_threshold(self):
        from repro.core.container import collapse_part_sizes

        sizes = {f"L0/b{i}": 10 for i in range(6)}
        sizes.update({"L0/bricks": 3, "L1/layout": 7, "mask/L0": 5})
        rows = collapse_part_sizes(sizes)
        assert ("L0/b* x6", 6, 60) in rows
        # Small families and unnumbered parts keep their own rows.
        assert ("L0/bricks", 1, 3) in rows
        assert ("L1/layout", 1, 7) in rows
        assert ("mask/L0", 1, 5) in rows

    def test_small_families_stay_individual(self):
        from repro.core.container import collapse_part_sizes

        sizes = {"L1/g0": 4, "L1/g1": 6, "L0/grid": 9}
        rows = collapse_part_sizes(sizes)
        assert ("L1/g0", 1, 4) in rows and ("L1/g1", 1, 6) in rows
        assert ("L0/grid", 1, 9) in rows

    def test_totals_preserved(self):
        from repro.core.container import collapse_part_sizes

        sizes = {f"L0/b{i}": i + 1 for i in range(12)}
        rows = collapse_part_sizes(sizes)
        assert sum(total for _label, _count, total in rows) == sum(sizes.values())
