"""Unit tests for the vectorized bit packing/peeking layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz.bitstream import as_peekable, pack_codes, peek_bits, unpack_to_bits


class TestPackCodes:
    def test_single_byte_code(self):
        buf, total = pack_codes(np.array([0b101], dtype=np.uint64), np.array([3]))
        assert total == 3
        assert unpack_to_bits(buf, 3).tolist() == [1, 0, 1]

    def test_two_codes_concatenate(self):
        codes = np.array([0b11, 0b0001], dtype=np.uint64)
        lengths = np.array([2, 4])
        buf, total = pack_codes(codes, lengths)
        assert total == 6
        assert unpack_to_bits(buf, 6).tolist() == [1, 1, 0, 0, 0, 1]

    def test_empty_input(self):
        buf, total = pack_codes(np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64))
        assert total == 0
        assert len(buf) >= 4  # safety padding retained

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError, match="positive"):
            pack_codes(np.array([1], dtype=np.uint64), np.array([0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="identical shapes"):
            pack_codes(np.array([1, 2], dtype=np.uint64), np.array([1]))

    def test_rejects_overlong_codes(self):
        with pytest.raises(ValueError, match="exceeds supported maximum"):
            pack_codes(np.array([1], dtype=np.uint64), np.array([60]))

    def test_total_bits_matches_lengths(self, rng):
        lengths = rng.integers(1, 17, size=1000)
        codes = np.array(
            [rng.integers(0, 1 << int(l)) for l in lengths], dtype=np.uint64
        )
        _, total = pack_codes(codes, lengths)
        assert total == int(lengths.sum())

    def test_payload_is_padded_for_peeks(self):
        buf, total = pack_codes(np.array([1], dtype=np.uint64), np.array([1]))
        # 1 bit of payload needs 1 byte + 4 bytes padding.
        assert len(buf) == 5


class TestPeekBits:
    def test_peek_first_bits(self):
        buf, _ = pack_codes(np.array([0b10110011], dtype=np.uint64), np.array([8]))
        arr = as_peekable(buf)
        got = peek_bits(arr, np.array([0]), 8)
        assert got[0] == 0b10110011

    def test_peek_with_phase_offsets(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 1, 0], dtype=np.uint8)
        packed = np.packbits(bits)
        arr = as_peekable(packed.tobytes())
        for offset in range(9):
            got = int(peek_bits(arr, np.array([offset]), 4)[0])
            want = int("".join(str(b) for b in bits[offset : offset + 4]).ljust(4, "0"), 2)
            assert got == want, f"offset {offset}"

    def test_peek_vectorized_matches_scalar(self, rng):
        payload = rng.integers(0, 256, size=64, dtype=np.uint8)
        arr = as_peekable(payload.tobytes())
        offsets = rng.integers(0, 64 * 8 - 16, size=100)
        batch = peek_bits(arr, offsets, 13)
        singles = np.array([int(peek_bits(arr, np.array([o]), 13)[0]) for o in offsets])
        assert np.array_equal(batch, singles)

    def test_width_bounds(self):
        arr = as_peekable(b"\x00" * 8)
        with pytest.raises(ValueError):
            peek_bits(arr, np.array([0]), 0)
        with pytest.raises(ValueError):
            peek_bits(arr, np.array([0]), 25)

    def test_peek_past_end_reads_padding(self):
        arr = as_peekable(b"\xff")
        got = peek_bits(arr, np.array([100]), 8)
        assert got[0] == 0  # zero padding, no crash


class TestRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=200), st.integers(0, 2**31))
    def test_pack_then_peek_recovers_codes(self, lengths, seed):
        rng = np.random.default_rng(seed)
        lengths = np.array(lengths, dtype=np.int64)
        codes = np.array(
            [rng.integers(0, 1 << int(l)) for l in lengths], dtype=np.uint64
        )
        buf, total = pack_codes(codes, lengths)
        arr = as_peekable(buf)
        offsets = np.cumsum(lengths) - lengths
        for i, (code, length) in enumerate(zip(codes, lengths)):
            width = min(int(length), 20)
            peeked = int(peek_bits(arr, offsets[i : i + 1], width)[0])
            want = int(code) >> (int(length) - width)
            assert peeked == want
