"""Tests for tools/reprolint: the framework (suppressions, fingerprints,
baseline, CLI exit codes) and each rule's fire/clean contract.

The RL001 and RL002 true-positive fixtures are minimized reproductions of
the PR 6 serve-layer bugs (the ``_ShardStore`` close-vs-open race and the
``LazyBatchArchive.open`` leak-on-raise) — the rules exist because those
shipped, so the tests pin that they would have been caught.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools.reprolint.baseline import Baseline
from tools.reprolint.cli import main as lint_main
from tools.reprolint.core import Finding, parse_suppressions
from tools.reprolint.engine import lint_paths
from tools.reprolint.rules import all_rules


def write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text).lstrip("\n"), encoding="utf-8")
    return path


def run_rules(root: Path, rules: list[str]):
    return lint_paths(root, ["."], rules).findings


def rule_lines(findings, rule: str) -> list[int]:
    return [f.line for f in findings if f.rule == rule]


# ---------------------------------------------------------------------------
# RL001 — guarded-field access
# ---------------------------------------------------------------------------


class TestRL001:
    RACE = """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._sources = {}

            def fetch(self, name):
                with self._lock:
                    self._sources[name] = object()

            def close(self):
                for src in self._sources:   # line 15: unlocked read
                    pass
                self._sources = {}          # line 17: unlocked write
        """

    def test_fires_on_pr6_race_shape(self, tmp_path):
        """The _ShardStore close-vs-open race: _sources is written under
        the lock by fetch() but swept without it by close()."""
        write(tmp_path, "store.py", self.RACE)
        findings = run_rules(tmp_path, ["RL001"])
        assert len(findings) == 2
        assert all(f.rule == "RL001" and "_sources" in f.message for f in findings)
        assert {f.context for f in findings} == {"Store.close"}

    def test_clean_when_every_access_is_locked(self, tmp_path):
        write(
            tmp_path,
            "store.py",
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._sources = {}

                def fetch(self, name):
                    with self._lock:
                        self._sources[name] = object()

                def close(self):
                    with self._lock:
                        self._sources = {}
            """,
        )
        assert run_rules(tmp_path, ["RL001"]) == []

    def test_caller_holds_lock_helper_is_clean(self, tmp_path):
        """The _check_open idiom: a private helper reached only from
        lock-held call sites counts as locked itself."""
        write(
            tmp_path,
            "store.py",
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._closed = False

                def _check(self):
                    if self._closed:
                        raise RuntimeError("closed")

                def get(self, name):
                    with self._lock:
                        self._check()
                        return name

                def close(self):
                    with self._lock:
                        self._closed = True
            """,
        )
        assert run_rules(tmp_path, ["RL001"]) == []

    def test_closure_under_lock_counts_as_unlocked(self, tmp_path):
        """A callback defined inside a lock block runs later on some pool
        thread — accesses inside it are not protected by the lock."""
        write(
            tmp_path,
            "store.py",
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self, pool):
                    with self._lock:
                        self._n = self._n + 1

                        def callback(_future):
                            self._n = self._n + 1

                        pool.submit(lambda: None).add_done_callback(callback)
            """,
        )
        findings = run_rules(tmp_path, ["RL001"])
        assert len(findings) == 2  # read + write inside the closure
        assert {f.context for f in findings} == {"Store.bump"}

    def test_init_is_exempt(self, tmp_path):
        write(
            tmp_path,
            "store.py",
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1
            """,
        )
        assert run_rules(tmp_path, ["RL001"]) == []

    def test_suppression_comment_silences(self, tmp_path):
        source = self.RACE.replace(
            "for src in self._sources:   # line 15: unlocked read",
            "for src in self._sources:  # reprolint: disable=RL001",
        ).replace(
            "self._sources = {}          # line 17: unlocked write",
            "self._sources = {}  # reprolint: disable=RL001",
        )
        write(tmp_path, "store.py", source)
        assert run_rules(tmp_path, ["RL001"]) == []


# ---------------------------------------------------------------------------
# RL002 — leak-on-raise
# ---------------------------------------------------------------------------


class TestRL002:
    def test_fires_on_pr6_leak_shape(self, tmp_path):
        """The lazy-archive head-parse leak: open a source, then raise on
        a validation failure without closing it."""
        write(
            tmp_path,
            "archive.py",
            """
            def load(opener, name):
                src = opener(name)
                head = src.read_at(0, 4)
                if head != b"RPBT":
                    raise ValueError("bad magic")
                return src
            """,
        )
        findings = run_rules(tmp_path, ["RL002"])
        assert rule_lines(findings, "RL002") == [2]
        assert "'src'" in findings[0].message

    def test_try_except_close_is_clean(self, tmp_path):
        write(
            tmp_path,
            "archive.py",
            """
            def load(opener, name):
                src = opener(name)
                try:
                    if src.read_at(0, 4) != b"RPBT":
                        raise ValueError("bad magic")
                except Exception:
                    src.close()
                    raise
                return src
            """,
        )
        assert run_rules(tmp_path, ["RL002"]) == []

    def test_with_statement_is_clean(self, tmp_path):
        write(
            tmp_path,
            "archive.py",
            """
            def load(name):
                fh = open(name, "rb")
                with fh:
                    if fh.read(4) != b"RPBT":
                        raise ValueError("bad magic")
                    return fh.read()
            """,
        )
        assert run_rules(tmp_path, ["RL002"]) == []

    def test_escape_before_raise_is_clean(self, tmp_path):
        write(
            tmp_path,
            "archive.py",
            """
            def load(opener, name, registry):
                src = opener(name)
                registry.adopt(src)
                if registry.full():
                    raise RuntimeError("registry full")
            """,
        )
        assert run_rules(tmp_path, ["RL002"]) == []

    def test_init_acquisition_with_later_call_fires(self, tmp_path):
        """__init__ is stricter: the caller never sees a partially built
        object, so any fallible later step must be try-wrapped."""
        write(
            tmp_path,
            "reader.py",
            """
            class Reader:
                def __init__(self, path, cache_bytes):
                    self._archive = open(path, "rb")
                    self._cache = make_cache(cache_bytes)
            """,
        )
        findings = run_rules(tmp_path, ["RL002"])
        assert rule_lines(findings, "RL002") == [3]
        assert "__init__" in findings[0].message

    def test_init_acquisition_with_try_guard_is_clean(self, tmp_path):
        write(
            tmp_path,
            "reader.py",
            """
            class Reader:
                def __init__(self, path, cache_bytes):
                    self._archive = open(path, "rb")
                    try:
                        self._cache = make_cache(cache_bytes)
                    except BaseException:
                        self._archive.close()
                        raise
            """,
        )
        assert run_rules(tmp_path, ["RL002"]) == []

    def test_raise_in_sibling_branch_is_clean(self, tmp_path):
        """Path sensitivity: a raise in the else-branch of the if that
        performed the acquisition can never run after it."""
        write(
            tmp_path,
            "writer.py",
            """
            class Writer:
                def __init__(self, sink):
                    if isinstance(sink, str):
                        self._fh = open(sink, "wb")
                    else:
                        raise TypeError("need a path")
                    try:
                        self._fh.write(b"MAGIC")
                    except BaseException:
                        self._fh.close()
                        raise
            """,
        )
        assert run_rules(tmp_path, ["RL002"]) == []

    def test_reraise_in_own_handler_is_clean(self, tmp_path):
        """The breaking_opener shape: a raise inside an except handler of
        the try whose body IS the acquisition means it never succeeded."""
        write(
            tmp_path,
            "breaker.py",
            """
            def open_breaking(opener, name, breaker):
                try:
                    src = opener(name)
                except Exception:
                    breaker.record_failure(name)
                    raise
                breaker.record_success(name)
                return src
            """,
        )
        assert run_rules(tmp_path, ["RL002"]) == []


# ---------------------------------------------------------------------------
# RL003 — format-bump-without-golden
# ---------------------------------------------------------------------------


class TestRL003:
    def _repo(self, tmp_path, version="2", inventory_value="2", fixture=True):
        write(
            tmp_path,
            "src/repro/core/fmt.py",
            f"""
            import struct

            FMT_VERSION = {version}
            _HEAD = struct.Struct("<BQ")
            """,
        )
        fixture_rel = "tests/data/golden_fmt.bin"
        if fixture:
            write(tmp_path, fixture_rel, "")
        inventory = {
            "constants": {
                "src/repro/core/fmt.py::FMT_VERSION": {
                    "value": inventory_value,
                    "fixtures": [fixture_rel],
                },
                "src/repro/core/fmt.py::_HEAD": {
                    "value": "struct.Struct('<BQ')",
                    "fixtures": [fixture_rel],
                },
            }
        }
        write(tmp_path, "tests/data/golden_inventory.json", json.dumps(inventory))
        return tmp_path

    def test_clean_when_inventory_matches(self, tmp_path):
        root = self._repo(tmp_path)
        assert lint_paths(root, ["src"], ["RL003"]).findings == []

    def test_fires_on_version_bump_without_inventory_update(self, tmp_path):
        root = self._repo(tmp_path, version="3", inventory_value="2")
        findings = lint_paths(root, ["src"], ["RL003"]).findings
        assert len(findings) == 1
        assert "changed" in findings[0].message
        assert findings[0].path == "src/repro/core/fmt.py"

    def test_fires_on_uncovered_constant(self, tmp_path):
        root = self._repo(tmp_path)
        write(
            root,
            "src/repro/core/extra.py",
            """
            NEW_MAGIC = b"XXXX"
            """,
        )
        findings = lint_paths(root, ["src"], ["RL003"]).findings
        assert len(findings) == 1
        assert "no row" in findings[0].message

    def test_fires_on_stale_inventory_row(self, tmp_path):
        root = self._repo(tmp_path)
        write(root, "src/repro/core/fmt.py", "import struct\n")
        findings = lint_paths(root, ["src"], ["RL003"]).findings
        assert len(findings) == 2  # both rows went stale
        assert all("stale" in f.message for f in findings)
        assert all(f.path == "tests/data/golden_inventory.json" for f in findings)

    def test_fires_on_missing_fixture_file(self, tmp_path):
        root = self._repo(tmp_path, fixture=False)
        findings = lint_paths(root, ["src"], ["RL003"]).findings
        assert findings and all("missing fixture" in f.message for f in findings)

    def test_fires_when_inventory_absent(self, tmp_path):
        write(tmp_path, "src/repro/core/fmt.py", "FMT_VERSION = 1\n")
        findings = lint_paths(tmp_path, ["src"], ["RL003"]).findings
        assert len(findings) == 1
        assert "missing" in findings[0].message


# ---------------------------------------------------------------------------
# RL004 — unawaited executor future
# ---------------------------------------------------------------------------


class TestRL004:
    def test_fires_on_dropped_submit(self, tmp_path):
        write(
            tmp_path,
            "pool.py",
            """
            def run(pool, jobs):
                for job in jobs:
                    pool.submit(job)
            """,
        )
        findings = run_rules(tmp_path, ["RL004"])
        assert rule_lines(findings, "RL004") == [3]
        assert "discarded" in findings[0].message

    def test_fires_on_cancel_only_future(self, tmp_path):
        """The deadline-path shape: keeping a future just to cancel it
        still swallows the worker's exception."""
        write(
            tmp_path,
            "pool.py",
            """
            def run(pool, job, deadline):
                future = pool.submit(job)
                if deadline.expired():
                    future.cancel()
            """,
        )
        findings = run_rules(tmp_path, ["RL004"])
        assert rule_lines(findings, "RL004") == [2]
        assert "cancel()" in findings[0].message

    def test_result_consumption_is_clean(self, tmp_path):
        write(
            tmp_path,
            "pool.py",
            """
            def run(pool, job):
                future = pool.submit(job)
                return future.result()
            """,
        )
        assert run_rules(tmp_path, ["RL004"]) == []

    def test_escape_to_wait_is_clean(self, tmp_path):
        write(
            tmp_path,
            "pool.py",
            """
            from concurrent.futures import wait

            def run(pool, jobs):
                pending = []
                for job in jobs:
                    future = pool.submit(job)
                    pending.append(future)
                wait(pending)
            """,
        )
        assert run_rules(tmp_path, ["RL004"]) == []

    def test_store_into_mapping_is_clean(self, tmp_path):
        write(
            tmp_path,
            "pool.py",
            """
            def run(pool, jobs, in_flight):
                for key, job in jobs.items():
                    future = pool.submit(job)
                    in_flight[key] = future
            """,
        )
        assert run_rules(tmp_path, ["RL004"]) == []


# ---------------------------------------------------------------------------
# RL005 — nondeterminism in codec paths
# ---------------------------------------------------------------------------


class TestRL005:
    def test_fires_on_wall_clock_in_zone(self, tmp_path):
        write(
            tmp_path,
            "src/repro/core/meta.py",
            """
            import time

            def head_record(method):
                return {"method": method, "created": time.time()}
            """,
        )
        findings = run_rules(tmp_path, ["RL005"])
        assert rule_lines(findings, "RL005") == [4]
        assert "time.time" in findings[0].message

    def test_fires_on_unseeded_rng_in_zone(self, tmp_path):
        write(
            tmp_path,
            "src/repro/sz/dither.py",
            """
            import numpy as np

            def dither(block):
                rng = np.random.default_rng()
                return block + rng.normal(size=block.shape)
            """,
        )
        findings = run_rules(tmp_path, ["RL005"])
        assert rule_lines(findings, "RL005") == [4]

    def test_seeded_rng_and_perf_counter_are_clean(self, tmp_path):
        write(
            tmp_path,
            "src/repro/ingest/stats.py",
            """
            import time

            import numpy as np

            def jitter(seed, n):
                start = time.perf_counter()
                rng = np.random.default_rng(seed)
                return rng.normal(size=n), time.perf_counter() - start
            """,
        )
        assert run_rules(tmp_path, ["RL005"]) == []

    def test_outside_zone_is_clean(self, tmp_path):
        write(
            tmp_path,
            "src/repro/serve/stats.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert run_rules(tmp_path, ["RL005"]) == []


# ---------------------------------------------------------------------------
# suppressions, fingerprints, baseline, CLI
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_trailing_and_standalone_comments(self):
        table = parse_suppressions(
            "x = risky()  # reprolint: disable=RL002\n"
            "# reprolint: disable=RL001,RL004\n"
            "y = other()\n"
        )
        assert table.is_suppressed("RL002", 1)
        assert table.is_suppressed("RL001", 3) and table.is_suppressed("RL004", 3)
        assert not table.is_suppressed("RL001", 1)

    def test_disable_all_and_disable_file(self):
        table = parse_suppressions(
            "a = 1  # reprolint: disable=all\n# reprolint: disable-file=RL005\n"
        )
        assert table.is_suppressed("RL003", 1)
        assert table.is_suppressed("RL005", 999)
        assert not table.is_suppressed("RL001", 999)


class TestFingerprints:
    def test_line_shift_keeps_fingerprint(self, tmp_path):
        src = """
        import time

        def head():
            return time.time()
        """
        write(tmp_path, "src/repro/core/a.py", src)
        before = run_rules(tmp_path, ["RL005"])[0].fingerprint()
        write(tmp_path, "src/repro/core/a.py", "# a new leading comment\n" + textwrap.dedent(src))
        after = run_rules(tmp_path, ["RL005"])[0].fingerprint()
        assert before == after

    def test_duplicate_findings_get_distinct_ordinals(self, tmp_path):
        write(
            tmp_path,
            "src/repro/core/a.py",
            """
            import time

            def head():
                a = time.time()
                b = time.time()
                return a + b
            """,
        )
        findings = run_rules(tmp_path, ["RL005"])
        assert len(findings) == 2
        assert findings[0].ordinal != findings[1].ordinal
        assert findings[0].fingerprint() != findings[1].fingerprint()


class TestBaselineRoundTrip:
    def test_partition_and_staleness(self, tmp_path):
        old = Finding("RL005", "a.py", 3, 0, "old finding")
        kept = Finding("RL005", "b.py", 7, 0, "kept finding")
        baseline = Baseline()
        baseline.write(tmp_path / "bl.json", [old, kept])

        reloaded = Baseline.load(tmp_path / "bl.json")
        fresh = Finding("RL005", "c.py", 1, 0, "fresh finding")
        new, baselined, stale = reloaded.partition([kept, fresh])
        assert new == [fresh]
        assert baselined == [kept]
        assert stale == [old.fingerprint()]

    def test_rewrite_preserves_justifications(self, tmp_path):
        finding = Finding("RL005", "a.py", 3, 0, "msg")
        baseline = Baseline()
        baseline.write(tmp_path / "bl.json", [finding])
        data = json.loads((tmp_path / "bl.json").read_text())
        data["findings"][finding.fingerprint()]["justification"] = "because reasons"
        (tmp_path / "bl.json").write_text(json.dumps(data))

        reloaded = Baseline.load(tmp_path / "bl.json")
        reloaded.write(tmp_path / "bl.json", [finding])
        data = json.loads((tmp_path / "bl.json").read_text())
        assert data["findings"][finding.fingerprint()]["justification"] == "because reasons"

    def test_missing_file_loads_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == {}


class TestCLIExitCodes:
    def _seed_violation(self, root: Path) -> None:
        write(
            root,
            "src/repro/core/bad.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )

    def _argv(self, root: Path, *extra: str) -> list[str]:
        return [
            "--root", str(root),
            "--baseline", str(root / "baseline.json"),
            "--rules", "RL005",
            "src",
        ] + list(extra)

    def test_zero_on_clean_tree(self, tmp_path, capsys):
        write(tmp_path, "src/repro/core/ok.py", "X = 1\n")
        assert lint_main(self._argv(tmp_path)) == 0
        assert "0 new" in capsys.readouterr().out

    def test_nonzero_on_seeded_violation(self, tmp_path, capsys):
        self._seed_violation(tmp_path)
        assert lint_main(self._argv(tmp_path)) == 1
        out = capsys.readouterr().out
        assert "RL005" in out and "bad.py" in out

    def test_zero_after_update_baseline_then_one_when_stale(self, tmp_path, capsys):
        self._seed_violation(tmp_path)
        assert lint_main(self._argv(tmp_path, "--update-baseline")) == 0
        assert lint_main(self._argv(tmp_path)) == 0
        # Fixing the violation turns the row stale: the gate must demand
        # the baseline shrink too.
        write(tmp_path, "src/repro/core/bad.py", "X = 1\n")
        assert lint_main(self._argv(tmp_path)) == 1
        assert "stale" in capsys.readouterr().out

    def test_no_baseline_flag_reports_everything(self, tmp_path):
        self._seed_violation(tmp_path)
        assert lint_main(self._argv(tmp_path, "--update-baseline")) == 0
        assert lint_main(self._argv(tmp_path, "--no-baseline")) == 1

    def test_json_report_written(self, tmp_path):
        self._seed_violation(tmp_path)
        report = tmp_path / "report.json"
        assert lint_main(self._argv(tmp_path, "--json", str(report))) == 1
        data = json.loads(report.read_text())
        assert data["new"] and data["new"][0]["rule"] == "RL005"
        assert {"files", "rules", "baselined", "stale"} <= set(data)

    def test_unknown_rule_exits_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            lint_main(["--root", str(tmp_path), "--rules", "RL999", "src"])
        assert excinfo.value.code == 2

    def test_list_rules_names_all_five(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert rule_id in out


class TestRegistry:
    def test_five_rules_registered(self):
        rules = all_rules()
        assert set(rules) == {"RL001", "RL002", "RL003", "RL004", "RL005"}
        for rule_id, cls in rules.items():
            assert cls.rule_id == rule_id
            assert cls.name and cls.description

    def test_syntax_error_becomes_rl000_finding(self, tmp_path):
        write(tmp_path, "broken.py", "def broken(:\n")
        findings = run_rules(tmp_path, ["RL005"])
        assert len(findings) == 1
        assert findings[0].rule == "RL000"
        assert "does not parse" in findings[0].message


class TestRepoIsClean:
    def test_repo_lint_has_no_new_findings(self):
        """The committed tree must lint clean against the committed
        baseline — the same gate CI enforces."""
        root = Path(__file__).resolve().parents[1]
        result = lint_paths(root)
        baseline = Baseline.load(root / "tools" / "reprolint" / "baseline.json")
        new, _baselined, stale = baseline.partition(result.findings)
        assert new == [], [f.render() for f in new]
        assert stale == []
