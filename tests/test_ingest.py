"""Ingest pipeline tests: streamed parity, temporal delta, session contract.

The load-bearing invariants:

* ``compress_iter`` is a *presentation* change, not a format change — part
  bytes, part order, and final metadata match ``compress`` exactly, for
  every strategy/bricking configuration (property-tested);
* the streamed writer's peak memory is bounded by a couple of level
  chunks, never the whole entry (measured on a synthetic chunk stream
  whose total dwarfs any one chunk);
* temporal delta coding is **closed-loop**: every reconstructed timestep
  honors the chain keyframe's absolute bound with no error accumulation,
  and ROI reads of a delta chain are bit-identical to slicing the full
  reconstruction;
* :class:`IngestSession` subsumes the old entry points — the deprecated
  shims still work (and say so), codec options can no longer leak between
  jobs by reference, and failures abort the session cleanly.
"""

from __future__ import annotations

import asyncio
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.hierarchy import AMRDataset, AMRLevel
from repro.amr.io import save_dataset
from repro.core.container import (
    CompressedDataset,
    LevelChunk,
    StreamingCompression,
    resolve_global_eb,
)
from repro.core.tac import TACCompressor
from repro.engine import CompressionEngine, CompressionJob, register, unregister
from repro.engine.archive import LazyBatchArchive, ShardedArchiveWriter
from repro.engine.registry import config_schema, validate_codec_options
from repro.ingest import (
    IngestConfig,
    IngestError,
    IngestSession,
    hierarchy_signature,
    read_timestep_level,
    read_timestep_region,
    temporal_chain,
)
from repro.serve.reader import ArchiveReader
from tests.helpers import assert_error_bounded, two_level_dataset

EB = 1e-3


def scaled(ds: AMRDataset, factor: float) -> AMRDataset:
    """The same hierarchy with data scaled by ``factor`` (one delta chain)."""
    return AMRDataset(
        levels=[
            AMRLevel(data=lvl.data * np.float32(factor), mask=lvl.mask, level=lvl.level)
            for lvl in ds.levels
        ],
        name=ds.name,
        field=ds.field,
        ratio=ds.ratio,
        box_size=ds.box_size,
    )


def timestep_series(steps: int, *, n: int = 16, seed: int = 0) -> list[AMRDataset]:
    """A smooth series over one hierarchy: step k scales by 1 + 0.05 k."""
    base = two_level_dataset(n=n, fine_fraction=0.3, seed=seed)
    return [scaled(base, 1.0 + 0.05 * k) for k in range(steps)]


def archive_entries(head_path) -> dict[str, tuple[dict, dict]]:
    """``key -> (parts bytes in wire order, meta)`` for every entry."""
    out = {}
    with LazyBatchArchive.open(head_path) as archive:
        for row in archive.manifest():
            entry = archive.entry(row["key"])
            out[row["key"]] = (
                {name: bytes(entry.parts[name]) for name in entry.parts},
                entry.meta,
            )
    return out


# ----------------------------------------------------------------------
# compress vs compress_iter parity
# ----------------------------------------------------------------------
class TestCompressIterParity:
    @settings(max_examples=6, deadline=None)
    @given(
        brick=st.sampled_from([None, 8]),
        shared=st.booleans(),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_chunked_output_is_byte_identical(self, brick, shared, seed):
        ds = two_level_dataset(n=16, fine_fraction=0.3, seed=seed)
        options = {"shared_tables": shared}
        if brick is not None:
            options["brick_size"] = brick
        eager = TACCompressor(**options).compress(ds, EB)
        stream = TACCompressor(**options).compress_iter(ds, EB)
        streamed = stream.collect()
        assert list(streamed.parts) == list(eager.parts)
        for name in eager.parts:
            assert streamed.parts[name] == eager.parts[name], name
        assert streamed.meta == eager.meta
        assert streamed.original_bytes == eager.original_bytes
        assert streamed.n_values == eager.n_values

    def test_chunks_arrive_finest_first_one_level_each(self):
        ds = two_level_dataset(n=16, fine_fraction=0.3, seed=1)
        levels = [c.level for c in TACCompressor().compress_iter(ds, EB)]
        assert levels == [0, 1]

    def test_session_streamed_matches_eager_entries(self, tmp_path):
        series = timestep_series(3)
        heads = {}
        for label, streaming in (("stream", True), ("eager", False)):
            head = tmp_path / f"{label}.rpbt"
            cfg = IngestConfig(
                error_bound=EB, keyframe_interval=2, streaming=streaming
            )
            with IngestSession(head, cfg) as session:
                session.extend(series)
            heads[label] = archive_entries(head)
        assert heads["stream"].keys() == heads["eager"].keys()
        for key in heads["eager"]:
            s_parts, s_meta = heads["stream"][key]
            e_parts, e_meta = heads["eager"][key]
            assert list(s_parts) == list(e_parts)
            assert s_parts == e_parts
            assert s_meta == e_meta

    def test_async_pipeline_matches_sync(self, tmp_path):
        series = timestep_series(4)
        heads = {}
        for label, overrides in (
            ("sync", {}),
            ("async", {"max_inflight": 3, "workers": 2}),
        ):
            head = tmp_path / f"{label}.rpbt"
            cfg = IngestConfig(error_bound=EB, keyframe_interval=2, **overrides)
            with IngestSession(head, cfg) as session:
                session.extend(series)
            heads[label] = archive_entries(head)
        assert heads["sync"] == heads["async"]


# ----------------------------------------------------------------------
# streamed-writer memory bound
# ----------------------------------------------------------------------
class TestStreamingWriterMemory:
    def test_peak_is_chunks_not_entry(self, tmp_path):
        """Writing an 8-chunk/8 MiB synthetic entry must not buffer it.

        The chunk generator materializes one ~1 MiB payload at a time;
        ``add_entry_stream`` writes each chunk before pulling the next,
        so the peak should sit near a couple of chunks — far below the
        entry total.  Synthetic chunks make the bound deterministic
        (codec working-set noise would otherwise dominate).
        """
        chunk_bytes = 1 << 20
        n_chunks = 8

        def chunks():
            for idx in range(n_chunks):
                payload = idx.to_bytes(1, "little") * chunk_bytes
                yield LevelChunk(
                    level=idx, meta={"level": idx}, parts={f"L{idx}/data": payload}
                )

        writer = ShardedArchiveWriter(tmp_path / "mem.rpbt")
        stream = StreamingCompression(
            method="fake",
            dataset_name="mem",
            original_bytes=n_chunks * chunk_bytes,
            n_values=n_chunks * chunk_bytes,
            chunks=chunks(),
            base_meta={"shapes": []},
        )
        tracemalloc.start()
        try:
            writer.add_entry_stream("mem", stream)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
            writer.close()
        total = n_chunks * chunk_bytes
        assert peak < 3 * chunk_bytes, f"peak {peak} ~ entry total {total}"


# ----------------------------------------------------------------------
# temporal delta coding
# ----------------------------------------------------------------------
class TestTemporalDelta:
    @pytest.fixture(scope="class")
    def delta_archive(self, tmp_path_factory):
        series = timestep_series(5)
        head = tmp_path_factory.mktemp("delta") / "series.rpbt"
        cfg = IngestConfig(error_bound=EB, mode="rel", keyframe_interval=3)
        with IngestSession(head, cfg) as session:
            keys = session.extend(series)
        return head, keys, series, session.report

    def test_keyframe_cadence_and_metadata(self, delta_archive):
        head, keys, _series, report = delta_archive
        modes = [row["temporal"]["mode"] for row in report.entries]
        assert modes == ["keyframe", "delta", "delta", "keyframe", "delta"]
        assert report.n_keyframes == 2 and report.n_deltas == 3
        entries = archive_entries(head)
        for i, key in enumerate(keys):
            _parts, meta = entries[key]
            temporal = meta["temporal"]
            assert temporal["step"] == i
            if temporal["mode"] == "delta":
                assert temporal["base"] == keys[i - 1]
                assert temporal["keyframe"] == keys[3 if i > 3 else 0]
                assert all(
                    lm.get("temporal") == "delta" for lm in meta["levels"]
                )
            else:
                assert all("temporal" not in lm for lm in meta["levels"])

    def test_closed_loop_bound_every_step(self, delta_archive):
        head, keys, series, _report = delta_archive
        kf_for = [0, 0, 0, 3, 3]
        with ArchiveReader(head) as reader:
            for i, key in enumerate(keys):
                eb_abs = resolve_global_eb(series[kf_for[i]], EB, "rel")
                for level_idx in range(len(series[i].levels)):
                    lvl, _stats = read_timestep_level(reader, key, level_idx)
                    want = series[i].levels[level_idx]
                    mask = want.mask
                    assert_error_bounded(
                        want.data[mask], lvl.data[mask], eb_abs
                    )

    def test_temporal_chain_walk(self, delta_archive):
        head, keys, _series, _report = delta_archive
        with ArchiveReader(head) as reader:
            assert temporal_chain(reader, keys[2]) == keys[:3]
            assert temporal_chain(reader, keys[0]) == [keys[0]]
            assert temporal_chain(reader, keys[4]) == keys[3:]

    def test_deltas_compress_better_than_keyframes(self, tmp_path):
        series = timestep_series(5)
        sizes = {}
        for interval in (1, 5):
            head = tmp_path / f"kf{interval}.rpbt"
            cfg = IngestConfig(error_bound=EB, keyframe_interval=interval)
            with IngestSession(head, cfg) as session:
                session.extend(series)
            report = session.report
            sizes[interval] = sum(
                row["compressed_bytes"] for row in report.manifest()
            )
        assert sizes[5] < sizes[1]

    def test_hierarchy_change_forces_keyframe(self, tmp_path):
        a = two_level_dataset(n=16, fine_fraction=0.3, seed=0)
        b = two_level_dataset(n=16, fine_fraction=0.3, seed=7)  # new masks
        assert hierarchy_signature(a) != hierarchy_signature(b)
        series = [a, scaled(a, 1.05), b, scaled(b, 1.05)]
        head = tmp_path / "guard.rpbt"
        cfg = IngestConfig(error_bound=EB, keyframe_interval=10)
        with IngestSession(head, cfg) as session:
            session.extend(series)
        modes = [row["temporal"]["mode"] for row in session.report.entries]
        assert modes == ["keyframe", "delta", "keyframe", "delta"]

    def test_interval_one_writes_no_temporal_metadata(self, tmp_path):
        head = tmp_path / "plain.rpbt"
        with IngestSession(head, IngestConfig(error_bound=EB)) as session:
            session.submit(two_level_dataset(n=16, seed=0))
        ((_parts, meta),) = archive_entries(head).values()
        assert "temporal" not in meta
        assert all("temporal" not in lm for lm in meta["levels"])


# ----------------------------------------------------------------------
# delta-aware reads
# ----------------------------------------------------------------------
class TestDeltaReads:
    def test_region_read_matches_full_reconstruction(self, tmp_path):
        series = timestep_series(3)
        head = tmp_path / "roi.rpbt"
        cfg = IngestConfig(error_bound=EB, keyframe_interval=3)
        with IngestSession(head, cfg) as session:
            keys = session.extend(series)
        roi = (slice(2, 10), slice(0, 8), slice(4, 12))
        with ArchiveReader(head) as reader:
            for key in keys:
                full, _ = read_timestep_level(reader, key, 0)
                region, stats = read_timestep_region(reader, key, 0, roi)
                np.testing.assert_array_equal(region, full.data[roi])
                assert len(stats) == len(temporal_chain(reader, key))


# ----------------------------------------------------------------------
# session contract
# ----------------------------------------------------------------------
class TestSessionContract:
    def test_default_keys_and_report(self, tmp_path):
        head = tmp_path / "out.rpbt"
        with IngestSession(head, IngestConfig(error_bound=EB)) as session:
            keys = session.extend(timestep_series(2))
        assert keys == ["toy2/test_field/t0000", "toy2/test_field/t0001"]
        report = session.report
        assert report.n_entries == 2
        assert report.head_path == head
        assert report.ratio() > 1.0
        assert all(row["wall_seconds"] > 0 for row in report.entries)

    def test_path_submission_uses_stem_key(self, tmp_path):
        ds = two_level_dataset(n=16, seed=0)
        src = tmp_path / "snap_0001.npz"
        save_dataset(ds, src)
        head = tmp_path / "out.rpbt"
        with IngestSession(head, IngestConfig(error_bound=EB)) as session:
            key = session.submit(src)
        assert key == "snap_0001"
        assert "snap_0001" in archive_entries(head)

    def test_duplicate_key_aborts_with_ingest_error(self, tmp_path):
        head = tmp_path / "dup.rpbt"
        session = IngestSession(head, IngestConfig(error_bound=EB))
        session.submit(two_level_dataset(n=16, seed=0), key="same")
        with pytest.raises(IngestError, match="'same'") as excinfo:
            session.submit(two_level_dataset(n=16, seed=1), key="same")
        assert excinfo.value.key == "same"
        assert excinfo.value.index == 1
        assert not head.exists()  # aborted: files removed
        with pytest.raises(ValueError, match="closed"):
            session.submit(two_level_dataset(n=16, seed=2))

    def test_failing_entry_names_key_and_index(self, tmp_path):
        head = tmp_path / "fail.rpbt"
        session = IngestSession(head, IngestConfig(error_bound=EB))
        session.submit(two_level_dataset(n=16, seed=0))
        with pytest.raises(IngestError, match=r"'missing' \(#1\)"):
            session.submit(tmp_path / "missing.npz", key="missing")
        assert not head.exists()

    def test_context_manager_aborts_on_exception(self, tmp_path):
        head = tmp_path / "ctx.rpbt"
        with pytest.raises(RuntimeError, match="producer died"):
            with IngestSession(head, IngestConfig(error_bound=EB)) as session:
                session.submit(two_level_dataset(n=16, seed=0))
                raise RuntimeError("producer died")
        assert not head.exists()
        assert not list(tmp_path.glob("*.rpsh"))

    def test_abort_is_idempotent(self, tmp_path):
        session = IngestSession(tmp_path / "a.rpbt", IngestConfig(error_bound=EB))
        session.abort()
        session.abort()
        with pytest.raises(ValueError, match="closed"):
            session.close()

    def test_config_and_overrides_are_exclusive(self, tmp_path):
        with pytest.raises(TypeError, match="not both"):
            IngestSession(
                tmp_path / "x.rpbt", IngestConfig(), keyframe_interval=2
            )

    def test_extend_async_backpressures_producer(self, tmp_path):
        series = timestep_series(3)

        async def produce():
            for snapshot in series:
                await asyncio.sleep(0)
                yield snapshot

        async def main():
            head = tmp_path / "async.rpbt"
            cfg = IngestConfig(error_bound=EB, keyframe_interval=2, max_inflight=2)
            with IngestSession(head, cfg) as session:
                keys = await session.extend_async(produce())
            return head, keys

        head, keys = asyncio.run(main())
        assert len(keys) == 3
        assert set(archive_entries(head)) == set(keys)


# ----------------------------------------------------------------------
# codec-options safety
# ----------------------------------------------------------------------
class _MutatingCodec:
    """Fake codec whose compress() mutates its (nested) options in place —
    the shared-by-reference leak vector the engine deep-copy guards."""

    method_name = "mut"

    def __init__(self, knobs=()):
        self.knobs = list(knobs) if not isinstance(knobs, list) else knobs
        self.knobs_at_build = tuple(self.knobs)

    def compress(self, dataset, error_bound, mode="rel", **kwargs):
        self.knobs.append("tainted")  # mutates the caller's list if shared
        return CompressedDataset(
            method="mut",
            dataset_name=dataset.name,
            parts={"blob": b"\0" * 64},
            meta={"levels": []},
            original_bytes=sum(lvl.data.nbytes for lvl in dataset.levels),
            n_values=sum(lvl.data.size for lvl in dataset.levels),
        )

    def decompress(self, comp, structure=None, **kwargs):  # pragma: no cover
        raise NotImplementedError


class TestCodecOptionsSafety:
    def test_engine_jobs_do_not_share_option_objects(self):
        register("mut-codec", _MutatingCodec, description="test only")
        try:
            shared = {"knobs": ["a", "b"]}
            ds = two_level_dataset(n=16, seed=0)
            jobs = [
                CompressionJob(
                    ds, codec="mut-codec", error_bound=EB,
                    label=f"j{i}", codec_options=shared,
                )
                for i in range(3)
            ]
            batch = CompressionEngine(max_workers=1)._run(jobs)
            assert all(res.error is None for res in batch.results)
            # The caller's dict came through unmutated...
            assert shared == {"knobs": ["a", "b"]}
        finally:
            unregister("mut-codec")

    def test_ingest_config_rejects_unknown_options(self):
        with pytest.raises(ValueError, match="bogus"):
            IngestConfig(codec_options={"bogus": 1})

    def test_submit_validates_per_call_options(self, tmp_path):
        session = IngestSession(tmp_path / "v.rpbt", IngestConfig(error_bound=EB))
        with pytest.raises(IngestError, match="bogus"):
            session.submit(
                two_level_dataset(n=16, seed=0), codec_options={"bogus": 1}
            )

    def test_validate_returns_deep_copy(self):
        options = {"brick_size": 8}
        out = validate_codec_options("tac", options)
        assert out == options and out is not options

    def test_tac_schema_is_enumerable(self):
        schema = config_schema("tac")
        assert schema is not None
        assert "brick_size" in schema and "shared_tables" in schema
        assert schema["brick_size"]["default"] == 64


# ----------------------------------------------------------------------
# deprecation shims
# ----------------------------------------------------------------------
class TestDeprecationShims:
    @pytest.fixture()
    def jobs(self):
        return [
            CompressionJob(
                two_level_dataset(n=16, seed=s), codec="tac",
                error_bound=EB, label=f"f{s}",
            )
            for s in range(2)
        ]

    def test_run_warns(self, jobs):
        engine = CompressionEngine()
        with pytest.warns(DeprecationWarning, match="IngestSession"):
            batch = engine.run(jobs)
        assert len(batch.results) == 2

    def test_run_to_shards_warns_and_matches_session(self, jobs, tmp_path):
        engine = CompressionEngine()
        with pytest.warns(DeprecationWarning, match="IngestSession"):
            sharded = engine.run_to_shards(
                jobs, tmp_path / "shim.rpbt", keep_payloads=True
            )
        assert [res.label for res in sharded] == ["f0", "f1"]
        assert all(res.compressed is not None for res in sharded)
        assert sharded.wall_seconds > 0
        entries = archive_entries(tmp_path / "shim.rpbt")
        assert set(entries) == {"f0", "f1"}
        assert all("temporal" not in meta for _parts, meta in entries.values())

    def test_run_to_archive_is_quiet(self, jobs):
        import warnings

        engine = CompressionEngine()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            archive = engine.run_to_archive(jobs)
        assert len(archive.entries) == 2


class TestSessionInitFailure:
    def test_pool_construction_failure_aborts_writer(self, tmp_path, monkeypatch):
        """RL002: IngestSession.__init__ creates the sharded writer before
        the worker pool; a pool failure must abort the writer or its
        head/shard state leaks with no owner."""
        import concurrent.futures as cf

        aborted = []
        real_abort = ShardedArchiveWriter.abort

        def spy_abort(self):
            aborted.append(True)
            return real_abort(self)

        monkeypatch.setattr(ShardedArchiveWriter, "abort", spy_abort)

        class BoomPool:
            def __init__(self, *args, **kwargs):
                raise RuntimeError("no threads available")

        monkeypatch.setattr(cf, "ThreadPoolExecutor", BoomPool)
        with pytest.raises(RuntimeError, match="no threads available"):
            IngestSession(tmp_path / "batch.rpbt", workers=2, max_inflight=4)
        assert aborted, "writer was not aborted when __init__ failed"
