"""Unit tests for the multilevel interpolation predictor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz.interp import interp_compress, interp_decompress
from tests.helpers import smooth_cube


def roundtrip(data: np.ndarray, eb: float) -> np.ndarray:
    codes = interp_compress(data, eb)
    return interp_decompress(codes, eb, data.shape)


class TestInterpRoundTrip:
    def test_code_count_equals_size(self, rng):
        data = rng.standard_normal((9, 7, 5))
        assert interp_compress(data, 1e-3).size == data.size

    @pytest.mark.parametrize(
        "shape",
        [(1,), (2,), (17,), (64,), (5, 9), (8, 8, 8), (13, 6, 21), (3, 4, 4, 4), (1, 1, 1)],
    )
    def test_error_bound_all_shapes(self, shape, rng):
        data = rng.standard_normal(shape) * 10
        eb = 1e-3
        recon = roundtrip(data, eb)
        assert np.max(np.abs(recon - data)) <= eb * (1 + 1e-9)

    def test_smooth_data_codes_concentrate_near_zero(self):
        data = smooth_cube(32, dtype=np.float64)
        # Bound above the cube's noise floor (0.01): residuals then reflect
        # interpolation error, which is tiny for a smooth field.
        codes = interp_compress(data, 2e-2)
        assert np.mean(np.abs(codes) <= 2) > 0.5

    def test_constant_field_codes_nearly_all_zero(self):
        data = np.full((16, 16, 16), 5.0)
        codes = interp_compress(data, 1e-3)
        # One anchor carries the value; everything else is zero residual.
        assert np.count_nonzero(codes) <= 1

    def test_4d_batch_blocks_are_independent(self, rng):
        # Reconstructing a batch must equal reconstructing each block alone.
        blocks = rng.standard_normal((5, 8, 8, 8))
        eb = 1e-2
        batch = roundtrip(blocks, eb)
        for b in range(blocks.shape[0]):
            single = roundtrip(blocks[b][None], eb)[0]
            assert np.allclose(batch[b], single)

    def test_empty_array(self):
        codes = interp_compress(np.zeros((0,)), 1e-3)
        assert codes.size == 0
        out = interp_decompress(codes, 1e-3, (0,))
        assert out.shape == (0,)

    def test_rejects_bad_ndim(self):
        with pytest.raises(ValueError, match="1-4D"):
            interp_compress(np.zeros((2,) * 5), 1e-3)

    def test_rejects_wrong_code_count(self):
        with pytest.raises(ValueError, match="expected"):
            interp_decompress(np.zeros(3, dtype=np.int64), 1e-3, (2, 2))

    def test_rejects_overflow_bound(self):
        with pytest.raises(ValueError, match="overflow"):
            interp_compress(np.array([1e30]), 1e-30)

    def test_deterministic(self, rng):
        data = rng.standard_normal((12, 12, 12))
        a = interp_compress(data, 1e-3)
        b = interp_compress(data, 1e-3)
        assert np.array_equal(a, b)

    def test_tighter_bound_larger_codes(self):
        data = smooth_cube(16, dtype=np.float64)
        loose = np.abs(interp_compress(data, 1e-2)).sum()
        tight = np.abs(interp_compress(data, 1e-4)).sum()
        assert tight > loose

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(1, 4),
        st.floats(min_value=1e-5, max_value=1.0),
        st.integers(0, 2**31),
    )
    def test_property_error_bound(self, ndim, eb, seed):
        rng = np.random.default_rng(seed)
        shape = tuple(int(s) for s in rng.integers(1, 9, size=ndim))
        data = rng.standard_normal(shape) * rng.uniform(0.1, 100)
        recon = roundtrip(data, eb)
        assert np.max(np.abs(recon - data)) <= eb * (1 + 1e-9)
