"""Unit + property tests for the end-to-end SZ compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sz import SZCompressor, SZConfig, compress, decompress
from tests.helpers import assert_error_bounded, smooth_cube


@pytest.fixture(scope="module")
def codec() -> SZCompressor:
    return SZCompressor()


class TestConfig:
    def test_rejects_conflicting_init(self):
        with pytest.raises(TypeError):
            SZCompressor(SZConfig(), radius=128)

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            SZConfig(radius=1)

    def test_rejects_bad_predictor(self):
        with pytest.raises(ValueError, match="predictor"):
            SZConfig(predictor="magic")

    def test_rejects_alphabet_overflow(self):
        with pytest.raises(ValueError, match="alphabet"):
            SZConfig(radius=2**20, max_code_len=16)

    def test_kwargs_init(self):
        codec = SZCompressor(radius=128, zlib_level=0)
        assert codec.config.radius == 128


class TestRoundTripAbs:
    @pytest.mark.parametrize("predictor", ["interp", "lorenzo"])
    @pytest.mark.parametrize("shape", [(100,), (16, 16), (12, 12, 12), (4, 6, 6, 6)])
    def test_bound_held(self, predictor, shape, rng):
        codec = SZCompressor(predictor=predictor)
        data = (rng.standard_normal(shape) * 50).astype(np.float32)
        eb = 0.01
        blob = codec.compress(data, eb, mode="abs")
        out = codec.decompress(blob)
        assert out.shape == shape and out.dtype == np.float32
        assert_error_bounded(data, out, eb)

    def test_float64_preserved(self, codec, rng):
        data = rng.standard_normal((10, 10, 10))
        out = codec.decompress(codec.compress(data, 1e-6, mode="abs"))
        assert out.dtype == np.float64
        assert_error_bounded(data, out, 1e-6)

    def test_integer_input_upcast(self, codec):
        data = np.arange(64, dtype=np.int32).reshape(4, 4, 4)
        out = codec.decompress(codec.compress(data, 0.5, mode="abs"))
        assert out.dtype == np.float64
        assert_error_bounded(data.astype(np.float64), out, 0.5)

    def test_non_contiguous_input(self, codec, rng):
        base = rng.standard_normal((20, 20)).astype(np.float32)
        view = base[::2, ::2]
        out = codec.decompress(codec.compress(view, 1e-3, mode="abs"))
        assert_error_bounded(np.ascontiguousarray(view), out, 1e-3)

    def test_fortran_order_input(self, codec, rng):
        data = np.asfortranarray(rng.standard_normal((8, 9, 10)).astype(np.float32))
        out = codec.decompress(codec.compress(data, 1e-3, mode="abs"))
        assert_error_bounded(data, out, 1e-3)

    def test_outlier_heavy_data(self, rng):
        # Spiky data forces heavy use of the escape channel.
        codec = SZCompressor(radius=4)
        data = rng.standard_normal(2000).astype(np.float32) * 1e6
        out = codec.decompress(codec.compress(data, 1.0, mode="abs"))
        assert_error_bounded(data, out, 1.0)

    def test_smooth_data_compresses_well(self, codec):
        data = smooth_cube(32)
        blob, stats = codec.compress_with_stats(data, 1e-3, mode="rel")
        assert stats.ratio > 5
        assert stats.bit_rate < 8

    def test_nan_rejected(self, codec):
        data = np.array([1.0, np.nan, 2.0])
        with pytest.raises(ValueError, match="non-finite"):
            codec.compress(data, 1e-3)

    def test_inf_rejected(self, codec):
        with pytest.raises(ValueError, match="non-finite"):
            codec.compress(np.array([np.inf]), 1e-3)

    def test_unsupported_ndim_rejected(self, codec):
        with pytest.raises(ValueError, match="dimensionalities"):
            codec.compress(np.zeros((2,) * 5), 1e-3)


class TestSpecialPaths:
    def test_empty_array(self, codec):
        out = codec.decompress(codec.compress(np.zeros((0,), dtype=np.float32), 1e-3))
        assert out.shape == (0,) and out.dtype == np.float32

    def test_lossless_when_eb_zero(self, codec, rng):
        data = rng.standard_normal(100).astype(np.float32)
        out = codec.decompress(codec.compress(data, 0.0, mode="abs"))
        assert np.array_equal(out, data)

    def test_constant_rel_mode_is_lossless(self, codec):
        data = np.full((6, 6, 6), np.float32(2.5))
        out = codec.decompress(codec.compress(data, 1e-3, mode="rel"))
        assert np.array_equal(out, data)

    def test_rel_mode_bound_scales_with_range(self, codec, rng):
        data = (rng.standard_normal((10, 10, 10)) * 1e9).astype(np.float32)
        eb_rel = 1e-4
        blob, stats = codec.compress_with_stats(data, eb_rel, mode="rel")
        expected_abs = eb_rel * (float(data.max()) - float(data.min()))
        assert stats.eb_abs == pytest.approx(expected_abs)
        assert_error_bounded(data, codec.decompress(blob), expected_abs)

    def test_zlib_disabled_still_roundtrips(self, rng):
        codec = SZCompressor(zlib_level=0)
        data = rng.standard_normal((9, 9, 9)).astype(np.float32)
        out = codec.decompress(codec.compress(data, 1e-3, mode="abs"))
        assert_error_bounded(data, out, 1e-3)


class TestPwRel:
    def test_pointwise_relative_bound(self, codec, rng):
        data = rng.lognormal(0, 3, size=3000)
        data[::7] = 0.0
        data[1::11] *= -1
        eb = 0.02
        out = codec.decompress(codec.compress(data, eb, mode="pw_rel"))
        nz = data != 0
        rel = np.abs((out[nz] - data[nz]) / data[nz])
        assert rel.max() <= eb * (1 + 1e-9)
        assert np.all(out[~nz] == 0.0)

    def test_signs_preserved(self, codec, rng):
        data = np.concatenate([rng.lognormal(0, 1, 100), -rng.lognormal(0, 1, 100)])
        out = codec.decompress(codec.compress(data, 0.1, mode="pw_rel"))
        assert np.array_equal(np.sign(out), np.sign(data))

    def test_pw_rel_bound_ge_one_rejected(self, codec):
        with pytest.raises(ValueError, match="pw_rel"):
            codec.compress(np.array([1.0]), 1.5, mode="pw_rel")

    def test_pw_rel_zero_bound_is_lossless(self, codec, rng):
        data = rng.standard_normal(50)
        out = codec.decompress(codec.compress(data, 0.0, mode="pw_rel"))
        assert np.array_equal(out, data)


class TestStats:
    def test_stats_account_for_blob(self, codec, rng):
        data = rng.standard_normal((16, 16, 16)).astype(np.float32)
        blob, stats = codec.compress_with_stats(data, 1e-3, mode="abs")
        assert stats.compressed_bytes == len(blob)
        assert stats.original_bytes == data.nbytes
        assert stats.n_values == data.size
        assert stats.ratio == pytest.approx(data.nbytes / len(blob))
        assert stats.bit_rate == pytest.approx(8 * len(blob) / data.size)
        assert sum(stats.section_bytes.values()) <= len(blob)

    def test_stats_sections_labelled(self, codec, rng):
        data = rng.standard_normal(500).astype(np.float32)
        _, stats = codec.compress_with_stats(data, 1e-3, mode="abs")
        assert {"huffman_table", "payload", "meta"} <= set(stats.section_bytes)

    def test_module_level_api(self, rng):
        data = rng.standard_normal(100).astype(np.float32)
        out = decompress(compress(data, 1e-3))
        assert_error_bounded(data, out, 1e-3)


class TestCorruption:
    def test_garbage_blob_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.decompress(b"not a stream at all")

    def test_truncated_blob_rejected(self, codec, rng):
        data = rng.standard_normal(100).astype(np.float32)
        blob = codec.compress(data, 1e-3)
        with pytest.raises(ValueError):
            codec.decompress(blob[: len(blob) // 2])


class TestProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float32,
            shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=12),
            elements=st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False, width=32
            ),
        ),
        st.sampled_from([1e-1, 1e-3, 1e-5]),
        st.sampled_from(["interp", "lorenzo"]),
    )
    def test_roundtrip_bound_property(self, data, eb, predictor):
        codec = SZCompressor(predictor=predictor)
        out = codec.decompress(codec.compress(data, eb, mode="abs"))
        assert out.shape == data.shape
        assert_error_bounded(data, out, eb, rtol=1e-3)
