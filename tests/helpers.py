"""Non-fixture test helpers (importable as ``tests.helpers``)."""

from __future__ import annotations

import numpy as np

from repro.amr.hierarchy import AMRDataset, AMRLevel


def smooth_cube(n: int, seed: int = 0, dtype=np.float32) -> np.ndarray:
    """A smooth, deterministic test cube (superposed low-frequency waves)."""
    rng_local = np.random.default_rng(seed)
    axis = np.linspace(0.0, 2.0 * np.pi, n)
    x = axis[:, None, None]
    y = axis[None, :, None]
    z = axis[None, None, :]
    field = (
        np.sin(x) * np.cos(2 * y) * np.sin(z)
        + 0.5 * np.cos(x + y)
        + 0.25 * np.sin(2 * z + 1.0)
    )
    field = field + 0.01 * rng_local.standard_normal((n, n, n))
    return field.astype(dtype)


def random_mask(shape, density: float, seed: int = 0, block: int = 1) -> np.ndarray:
    """Random boolean mask with approximately the requested density.

    ``block > 1`` produces block-granular masks (the AMR-like case).
    """
    rng_local = np.random.default_rng(seed)
    if block == 1:
        return rng_local.random(shape) < density
    nb = tuple(-(-dim // block) for dim in shape)
    coarse = rng_local.random(nb) < density
    mask = np.repeat(np.repeat(np.repeat(coarse, block, 0), block, 1), block, 2)
    return mask[: shape[0], : shape[1], : shape[2]]


def two_level_dataset(
    n: int = 16, fine_fraction: float = 0.25, seed: int = 0, dtype=np.float32
) -> AMRDataset:
    """Small hand-rolled two-level tree AMR dataset with exact tiling."""
    rng_local = np.random.default_rng(seed)
    coarse_n = n // 2
    # Refine the first `k` coarse cells (flat order) to the fine level.
    k = max(1, int(round(fine_fraction * coarse_n**3)))
    refined_coarse = np.zeros(coarse_n**3, dtype=bool)
    refined_coarse[:k] = True
    rng_local.shuffle(refined_coarse)
    refined_coarse = refined_coarse.reshape((coarse_n,) * 3)

    fine_mask = np.repeat(np.repeat(np.repeat(refined_coarse, 2, 0), 2, 1), 2, 2)
    coarse_mask = ~refined_coarse

    fine_data = np.where(fine_mask, smooth_cube(n, seed=seed, dtype=dtype), dtype(0))
    coarse_data = np.where(
        coarse_mask, smooth_cube(coarse_n, seed=seed + 1, dtype=dtype), dtype(0)
    )
    ds = AMRDataset(
        levels=[
            AMRLevel(data=fine_data, mask=fine_mask, level=0),
            AMRLevel(data=coarse_data, mask=coarse_mask, level=1),
        ],
        name="toy2",
        field="test_field",
    )
    ds.validate()
    return ds


def golden_dataset(n: int = 8) -> AMRDataset:
    """Fully analytic two-level dataset for the golden-format fixture.

    No RNG anywhere: data is a closed-form wave field and the mask refines
    a fixed checkerboard-ish prefix of coarse cells, so the construction
    is reproducible on any platform/numpy forever.  Used both by
    ``tests/data/make_golden.py`` (fixture generation) and by
    ``tests/test_golden_format.py`` (bound verification).
    """
    coarse_n = n // 2
    idx = np.arange(coarse_n**3).reshape((coarse_n,) * 3)
    refined = (idx % 3 == 0) | (idx % 7 == 1)
    fine_mask = np.repeat(np.repeat(np.repeat(refined, 2, 0), 2, 1), 2, 2)

    def wave(m: int, phase: float) -> np.ndarray:
        axis = np.linspace(0.0, 2.0 * np.pi, m)
        x = axis[:, None, None]
        y = axis[None, :, None]
        z = axis[None, None, :]
        return (np.sin(x + phase) * np.cos(2 * y) + 0.5 * np.cos(z - phase)).astype(
            np.float32
        )

    fine_data = np.where(fine_mask, wave(n, 0.25), np.float32(0))
    coarse_data = np.where(~refined, wave(coarse_n, 1.5), np.float32(0))
    ds = AMRDataset(
        levels=[
            AMRLevel(data=fine_data, mask=fine_mask, level=0),
            AMRLevel(data=coarse_data, mask=~refined, level=1),
        ],
        name="golden",
        field="golden_field",
    )
    ds.validate()
    return ds


def golden_gsp_dataset(n: int = 16) -> AMRDataset:
    """Fully analytic two-level dataset whose fine level selects GSP.

    Companion to :func:`golden_dataset` for the GSP/ZF golden fixtures: the
    fine level is ~70% dense (>= T2, so the density filter picks GSP) and
    the coarse level holds the remaining ~30% (OpST), giving one blob with
    both a padded-grid level and a block-strategy level.  No RNG anywhere —
    the mask is a fixed modular pattern and the data a closed-form wave
    field, reproducible on any platform/numpy forever.
    """
    coarse_n = n // 2
    idx = np.arange(coarse_n**3).reshape((coarse_n,) * 3)
    refined = (idx % 10) < 7  # 70% of coarse cells refine -> dense fine level
    fine_mask = np.repeat(np.repeat(np.repeat(refined, 2, 0), 2, 1), 2, 2)

    def wave(m: int, phase: float) -> np.ndarray:
        axis = np.linspace(0.0, 2.0 * np.pi, m)
        x = axis[:, None, None]
        y = axis[None, :, None]
        z = axis[None, None, :]
        return (np.cos(x - phase) * np.sin(y) + 0.5 * np.sin(2 * z + phase)).astype(
            np.float32
        )

    fine_data = np.where(fine_mask, wave(n, 0.75), np.float32(0))
    coarse_data = np.where(~refined, wave(coarse_n, 2.25), np.float32(0))
    ds = AMRDataset(
        levels=[
            AMRLevel(data=fine_data, mask=fine_mask, level=0),
            AMRLevel(data=coarse_data, mask=~refined, level=1),
        ],
        name="golden-gsp",
        field="golden_field",
    )
    ds.validate()
    return ds


def assert_error_bounded(original, reconstructed, bound: float, rtol: float = 1e-4):
    """Assert max |a-b| <= bound, with the storage-dtype ULP allowance.

    The codec's documented guarantee is ``max(eb, ulp(value)/2)`` in the
    array's storage dtype: when the bound is below half an ULP, rounding the
    reconstruction into that dtype is the binding constraint, not the codec.
    """
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed)
    if a.size == 0:
        return
    # Half-ULP of the largest magnitude in the *storage* dtype.
    ulp = float(np.spacing(np.asarray(np.max(np.abs(a)), dtype=b.dtype)))
    err = float(np.max(np.abs(a - b.astype(np.float64))))
    limit = bound * (1.0 + rtol) + 0.5 * ulp + 1e-12
    assert err <= limit, f"max error {err:g} exceeds bound {bound:g} (+ulp/2 {ulp / 2:g})"


def golden_timestep_series(steps: int = 3, n: int = 8) -> list:
    """Analytic timestep series over :func:`golden_dataset` (no RNG).

    Step ``k`` scales the base field by ``1 + 0.07 k`` in float32 —
    masks stay constant (one temporal-delta chain) and consecutive steps
    differ by a small smooth residual, while the whole construction is
    closed-form so the ingest golden fixture is reproducible on any
    platform/numpy forever.
    """
    base = golden_dataset(n)
    series = []
    for k in range(steps):
        factor = np.float32(1.0 + 0.07 * k)
        series.append(
            AMRDataset(
                levels=[
                    AMRLevel(data=lvl.data * factor, mask=lvl.mask.copy(), level=lvl.level)
                    for lvl in base.levels
                ],
                name=base.name,
                field=base.field,
                ratio=base.ratio,
                box_size=base.box_size,
            )
        )
    return series
