"""Integration tests: every experiment module runs and reports sane rows.

Run at the smallest scale so the whole file stays fast; the benchmark
harness exercises the realistic sizes.
"""

import pytest

from repro.experiments import ABLATIONS, PAPER_EXPERIMENTS
from repro.experiments.common import ExperimentResult, match_ratio_error_bound
from repro.core.tac import TACCompressor
from repro.sim.datasets import make_dataset

SCALE = 8


class TestExperimentInfrastructure:
    def test_result_table_renders(self):
        res = ExperimentResult(
            experiment="x",
            title="t",
            rows=[{"a": 1, "b": 2.5, "c": "s", "d": True, "e": None}],
        )
        table = res.table()
        assert "a" in table and "2.5" in table and "yes" in table and "-" in table

    def test_empty_table(self):
        assert ExperimentResult(experiment="x", title="t").table() == "(no rows)"

    def test_report_includes_claim(self):
        res = ExperimentResult(experiment="x", title="t", paper_claim="c", notes="n")
        report = res.report()
        assert "paper: c" in report and "notes: n" in report

    def test_match_ratio_bisection(self):
        ds = make_dataset("Run1_Z10", scale=SCALE)
        tac = TACCompressor()
        target = tac.compress(ds, 1e-3, mode="rel").ratio(include_masks=False)
        eb = match_ratio_error_bound(tac, ds, target, iterations=8)
        achieved = tac.compress(ds, eb, mode="rel").ratio(include_masks=False)
        assert achieved == pytest.approx(target, rel=0.25)


class TestPaperExperimentsRun:
    def test_table1(self):
        res = PAPER_EXPERIMENTS["table1"](scale=SCALE)
        assert len(res.rows) == 7
        assert all(r["levels"] >= 2 for r in res.rows)

    def test_fig07_opst_wins_ratio(self):
        res = PAPER_EXPERIMENTS["fig07"](scale=SCALE)
        nast, opst = res.rows
        assert opst["ratio"] > nast["ratio"]

    def test_fig11_opst_akdtree_close(self):
        res = PAPER_EXPERIMENTS["fig11"](scale=SCALE, error_bounds=(5e-4,))
        for row in res.rows:
            # Paper: near-identical compression performance at any density.
            assert row["opst_bitrate"] == pytest.approx(
                row["akdtree_bitrate"], rel=0.35
            ), row

    def test_fig12_gsp_not_worse_than_zf(self):
        res = PAPER_EXPERIMENTS["fig12"](scale=SCALE)
        zf, gsp = res.rows
        assert gsp["ratio"] >= zf["ratio"] * 0.98

    def test_fig13_reports_all_densities(self):
        res = PAPER_EXPERIMENTS["fig13"](scale=SCALE, repeats=1, densities=(0.1, 0.5, 0.9))
        assert len(res.rows) == 3
        densities = [r["density"] for r in res.rows]
        assert densities == sorted(densities)
        assert all(r["opst_seconds"] >= 0 for r in res.rows)
        # All rows share one grid: density is the only variable.
        assert len({r["grid"] for r in res.rows}) == 1

    def test_fig14_rows_complete(self):
        res = PAPER_EXPERIMENTS["fig14"](scale=SCALE, error_bounds=(1e-3,), datasets=("Run1_Z10",))
        row = res.rows[0]
        for label in ("tac", "baseline_1d", "zmesh", "baseline_3d"):
            assert row[f"{label}_bitrate"] > 0
            assert row[f"{label}_psnr"] > 0

    def test_fig15_tac_dominates(self):
        res = PAPER_EXPERIMENTS["fig15"](scale=SCALE, error_bounds=(1e-3,))
        for row in res.rows:
            assert row["tac_bitrate"] < row["baseline_3d_bitrate"], row

    def test_fig18_bitrate_decreases_with_eb(self):
        res = PAPER_EXPERIMENTS["fig18"](scale=SCALE, error_bounds=(1e-2, 1e-3, 1e-4))
        fine = [r["fine_bitrate"] for r in res.rows]
        assert fine == sorted(fine)

    def test_fig19_runs_and_reports(self):
        res = PAPER_EXPERIMENTS["fig19"](scale=SCALE)
        methods = [r["method"] for r in res.rows]
        assert methods == ["baseline_3d", "tac_1to1", "tac_3to1"]
        ratios = [r["ratio"] for r in res.rows]
        assert max(ratios) / min(ratios) < 2.0  # matched CRs

    def test_table2_throughputs_positive(self):
        res = PAPER_EXPERIMENTS["table2"](
            scale=SCALE, error_bounds=(1e9,), datasets=("Run1_Z10", "Run2_T3")
        )
        for row in res.rows:
            for label in ("baseline_1d", "baseline_3d", "tac"):
                assert row[label] > 0

    def test_table2_tac_beats_3d_on_run2(self):
        res = PAPER_EXPERIMENTS["table2"](
            scale=SCALE, error_bounds=(1e9,), datasets=("Run2_T3",)
        )
        row = res.rows[0]
        assert row["tac"] > row["baseline_3d"]

    def test_table3_runs_and_matches_ratios(self):
        res = PAPER_EXPERIMENTS["table3"](scale=SCALE)
        assert [r["method"] for r in res.rows] == ["baseline_3d", "tac_1to1", "tac_2to1"]
        assert all(r["matched"] for r in res.rows)


class TestAblationsRun:
    def test_block_size(self):
        res = ABLATIONS["ablation_block_size"](scale=SCALE)
        assert len(res.rows) >= 2

    def test_predictor(self):
        res = ABLATIONS["ablation_predictor"](scale=SCALE)
        interp, lorenzo = res.rows
        assert interp["predictor"] == "interp"
        # Interp should not lose to Lorenzo on rate at similar PSNR.
        assert interp["bit_rate"] <= lorenzo["bit_rate"] * 1.1

    def test_thresholds(self):
        res = ABLATIONS["ablation_thresholds"](scale=SCALE)
        hybrids = [r for r in res.rows if r["strategy"] == "hybrid"]
        assert hybrids

    def test_split_rule(self):
        res = ABLATIONS["ablation_split_rule"](scale=SCALE)
        for row in res.rows:
            assert row["adaptive_leaves"] > 0

    def test_gsp_layers(self):
        res = ABLATIONS["ablation_gsp_layers"](scale=SCALE)
        assert res.rows[0]["config"] == "zero_fill"
        assert len(res.rows) >= 4
