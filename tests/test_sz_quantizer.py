"""Unit tests for error-bound resolution and pre-quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sz.quantizer import (
    ErrorMode,
    dequantize,
    quantize,
    resolve_error_bound,
)


class TestResolveErrorBound:
    def test_abs_mode_passthrough(self):
        data = np.array([1.0, 2.0])
        assert resolve_error_bound(data, 1e-3, "abs") == 1e-3

    def test_rel_mode_scales_by_range(self):
        data = np.array([0.0, 10.0])
        assert resolve_error_bound(data, 1e-2, ErrorMode.REL) == pytest.approx(0.1)

    def test_rel_mode_constant_data_gives_zero(self):
        data = np.full(10, 3.0)
        assert resolve_error_bound(data, 1e-2, "rel") == 0.0

    def test_rel_mode_empty_data(self):
        assert resolve_error_bound(np.zeros(0), 1e-2, "rel") == 0.0

    def test_pw_rel_rejected_here(self):
        with pytest.raises(ValueError, match="pw_rel"):
            resolve_error_bound(np.array([1.0]), 1e-2, "pw_rel")

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            resolve_error_bound(np.array([1.0]), -1e-3, "abs")


class TestQuantize:
    def test_error_bounded(self, rng):
        data = rng.standard_normal(1000) * 100
        eb = 0.05
        recon = dequantize(quantize(data, eb), eb)
        assert np.max(np.abs(recon - data)) <= eb * (1 + 1e-12)

    def test_zero_maps_to_zero(self):
        assert quantize(np.array([0.0]), 0.1)[0] == 0

    def test_symmetric_rounding(self):
        codes = quantize(np.array([0.3, -0.3]), 0.1)
        assert codes[0] == -codes[1]

    def test_rejects_zero_bound(self):
        with pytest.raises(ValueError, match="positive"):
            quantize(np.array([1.0]), 0.0)

    def test_rejects_overflowing_bound(self):
        with pytest.raises(ValueError, match="int64 headroom"):
            quantize(np.array([1e30]), 1e-30)

    def test_dequantize_dtype(self):
        codes = quantize(np.array([1.0, 2.0]), 0.1)
        out = dequantize(codes, 0.1, dtype=np.float32)
        assert out.dtype == np.float32

    def test_dequantize_rejects_zero_bound(self):
        with pytest.raises(ValueError):
            dequantize(np.array([1], dtype=np.int64), 0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e12, max_value=1e12, allow_nan=False),
            min_size=1,
            max_size=100,
        ),
        st.floats(min_value=1e-6, max_value=1e6),
    )
    def test_property_bound_always_held(self, values, eb):
        data = np.array(values, dtype=np.float64)
        from hypothesis import assume

        # Stay inside the documented int64-headroom envelope; the guard for
        # exceeding it is tested separately.
        assume(float(np.max(np.abs(data))) / (2 * eb) < 2.0**58)
        recon = dequantize(quantize(data, eb), eb)
        # When eb sits at/below ulp(max|x|) (e.g. |x|~1e12 with eb=1e-6)
        # the float64 reconstruction itself rounds by up to one ULP — the
        # codec's documented fine print, not a quantizer bug.
        ulp = float(np.spacing(np.max(np.abs(data))))
        assert np.max(np.abs(recon - data)) <= eb * (1 + 1e-9) + ulp
