"""Shared fixtures for the test suite.

Grids are kept deliberately tiny (16³–64³) so the full suite runs in a few
minutes; the benchmark harness is where realistic sizes live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.hierarchy import AMRDataset
from repro.sim.datasets import make_dataset


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def z10_small() -> AMRDataset:
    """Run1_Z10 at the smallest scale (64³/32³): 23%/77% densities."""
    return make_dataset("Run1_Z10", scale=8)


@pytest.fixture(scope="session")
def z3_small() -> AMRDataset:
    """Run1_Z3 at the smallest scale: dense finest level (64%)."""
    return make_dataset("Run1_Z3", scale=8)


@pytest.fixture(scope="session")
def t3_small() -> AMRDataset:
    """Run2_T3 at the smallest scale: three levels, sparse finest."""
    return make_dataset("Run2_T3", scale=8)
