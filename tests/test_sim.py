"""Unit tests for the synthetic Nyx substrate (fields, refinement, registry)."""

import numpy as np
import pytest

from repro.sim.datasets import TABLE1, make_dataset, resolve_scale
from repro.sim.gaussian_field import FieldGenerator
from repro.sim.nyx import NYX_FIELDS, generate_field, generate_snapshot, lognormal_density
from repro.sim.refinement import build_amr, select_top_blocks
from tests.helpers import smooth_cube


class TestFieldGenerator:
    def test_deterministic_by_seed(self):
        a = FieldGenerator(16, seed=7).delta()
        b = FieldGenerator(16, seed=7).delta()
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = FieldGenerator(16, seed=1).delta()
        b = FieldGenerator(16, seed=2).delta()
        assert not np.allclose(a, b)

    def test_delta_normalized(self):
        delta = FieldGenerator(32, seed=3).delta()
        assert abs(float(delta.mean())) < 1e-10
        assert float(delta.std()) == pytest.approx(1.0, rel=1e-6)

    def test_steeper_spectrum_is_smoother(self):
        # Mean squared first difference measures roughness.
        def roughness(ns):
            f = FieldGenerator(32, seed=5, spectral_index=ns).delta()
            return float(np.mean(np.diff(f, axis=0) ** 2))

        assert roughness(-3.5) < roughness(-1.0)

    def test_correlated_delta_correlation(self):
        gen = FieldGenerator(32, seed=11)
        base = gen.delta()
        corr = gen.correlated_delta(0.9)
        rho = float(np.corrcoef(base.ravel(), corr.ravel())[0, 1])
        assert rho == pytest.approx(0.9, abs=0.05)

    def test_velocities_consistent_and_normalized(self):
        gen = FieldGenerator(16, seed=2)
        vx, vy, vz = gen.velocities(amplitude=3.0)
        for comp in (vx, vy, vz):
            assert float(np.sqrt(np.mean(comp**2))) == pytest.approx(3.0, rel=1e-6)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FieldGenerator(16, box_size=-1)
        with pytest.raises(ValueError):
            FieldGenerator(16, cutoff_fraction=0)
        with pytest.raises(ValueError):
            FieldGenerator(16).correlated_delta(2.0)


class TestNyxFields:
    def test_all_fields_generate(self):
        snap = generate_snapshot(8, seed=1)
        assert set(snap) == set(NYX_FIELDS)
        for name, arr in snap.items():
            assert arr.shape == (8, 8, 8)
            assert arr.dtype == np.float32
            assert np.isfinite(arr).all(), name

    def test_baryon_density_positive_with_nyx_scale(self):
        rho = generate_field("baryon_density", 16, seed=3)
        assert (rho > 0).all()
        assert 1e7 < float(rho.mean()) < 1e11

    def test_lognormal_mean_preserved(self):
        rng = np.random.default_rng(0)
        delta = rng.standard_normal(200_000)
        delta -= delta.mean()
        delta /= delta.std()
        rho = lognormal_density(delta, 1.0, 1e9)
        assert float(rho.mean()) == pytest.approx(1e9, rel=0.05)

    def test_lognormal_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            lognormal_density(np.zeros(4), -1.0, 1.0)

    def test_temperature_positively_correlates_with_density(self):
        rho = generate_field("baryon_density", 16, seed=4).ravel()
        temp = generate_field("temperature", 16, seed=4).ravel()
        assert np.corrcoef(np.log(rho), np.log(temp))[0, 1] > 0.5

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            generate_field("pressure", 8)


class TestRefinement:
    def test_masks_tile_exactly(self):
        truth = smooth_cube(16)
        ds = build_amr(truth, [0.3, 0.7])
        ds.validate()

    def test_densities_near_targets(self):
        truth = smooth_cube(32)
        ds = build_amr(truth, [0.25, 0.75])
        assert ds.densities()[0] == pytest.approx(0.25, abs=0.05)

    def test_three_levels(self):
        truth = smooth_cube(16)
        ds = build_amr(truth, [0.1, 0.3, 0.6])
        ds.validate()
        assert [lvl.n for lvl in ds.levels] == [16, 8, 4]

    def test_refines_where_values_are_high(self):
        truth = smooth_cube(16).astype(np.float64)
        ds = build_amr(truth, [0.2, 0.8])
        fine = ds.levels[0]
        refined_mean = truth[fine.mask].mean() if fine.n_points() else 0
        assert refined_mean > truth.mean()

    def test_coarse_values_are_block_means(self):
        truth = smooth_cube(8).astype(np.float32)
        ds = build_amr(truth, [0.25, 0.75])
        coarse = ds.levels[1]
        coords = np.argwhere(coarse.mask)
        ci, cj, ck = coords[0]
        block = truth[2 * ci : 2 * ci + 2, 2 * cj : 2 * cj + 2, 2 * ck : 2 * ck + 2]
        assert coarse.data[ci, cj, ck] == pytest.approx(block.mean(), rel=1e-5)

    def test_rejects_non_cube(self):
        with pytest.raises(ValueError, match="cube"):
            build_amr(np.zeros((4, 4, 8)), [0.5, 0.5])

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            build_amr(np.zeros((8, 8, 8)), [])
        with pytest.raises(ValueError):
            build_amr(np.zeros((8, 8, 8)), [-1.0, 2.0])

    def test_rejects_indivisible_grid(self):
        with pytest.raises(ValueError, match="divisible"):
            build_amr(np.zeros((6, 6, 6)), [0.2, 0.3, 0.5])

    def test_rejects_non_pow2_block(self):
        with pytest.raises(ValueError, match="power of two"):
            build_amr(np.zeros((8, 8, 8)), [0.5, 0.5], refine_block=3)

    def test_select_top_blocks_respects_candidates(self):
        score = np.arange(8, dtype=np.float64).reshape(2, 2, 2)
        candidate = np.zeros((2, 2, 2), dtype=bool)
        candidate[0, 0, 0] = True
        chosen = select_top_blocks(score, candidate, 100, 1)
        assert chosen.sum() == 1 and chosen[0, 0, 0]


class TestRegistry:
    @pytest.mark.parametrize("name", list(TABLE1))
    def test_every_dataset_matches_table1(self, name):
        spec = TABLE1[name]
        ds = make_dataset(name, scale=8)
        ds.validate()
        assert ds.n_levels == spec.n_levels
        got = ds.densities()
        for target, actual in zip(spec.densities, got):
            # Block-granular refinement rounds tiny fractions; accept the
            # larger of 50% relative or 0.01 absolute slack.
            assert abs(actual - target) <= max(0.5 * target, 0.01), (
                f"{name}: target {target}, got {actual}"
            )

    def test_scale_clamped_for_small_coarse_grids(self):
        spec = TABLE1["Run2_T4"]
        assert resolve_scale(spec, 64) < 64

    def test_rejects_non_pow2_scale(self):
        with pytest.raises(ValueError, match="power of two"):
            make_dataset("Run1_Z10", scale=3)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_dataset("Run9_Z0")

    def test_seed_override_changes_data(self):
        a = make_dataset("Run1_Z10", scale=8)
        b = make_dataset("Run1_Z10", scale=8, seed=999)
        assert not np.array_equal(a.finest.data, b.finest.data)

    def test_deterministic(self):
        a = make_dataset("Run2_T2", scale=8)
        b = make_dataset("Run2_T2", scale=8)
        assert np.array_equal(a.finest.data, b.finest.data)
        assert np.array_equal(a.finest.mask, b.finest.mask)

    def test_meta_records_provenance(self):
        ds = make_dataset("Run1_Z5", scale=8)
        assert ds.meta["scale"] == 8
        assert ds.meta["paper_grids"][0] == 512
