"""Unit tests for up/down-sampling, reconstruction helpers, and AMR IO."""

import numpy as np
import pytest

from repro.amr.hierarchy import AMRLevel
from repro.amr.io import load_dataset, save_dataset
from repro.amr.reconstruct import (
    check_same_structure,
    max_level_errors,
    pointwise_errors,
    uniform_pair,
)
from repro.amr.upsample import (
    coarsen_mask_all,
    coarsen_mask_any,
    downsample_mean,
    downsample_take,
    upsample,
)
from tests.helpers import two_level_dataset


class TestUpsample:
    def test_factor_one_is_identity(self, rng):
        data = rng.standard_normal((4, 4, 4))
        assert upsample(data, 1) is np.asarray(data) or np.array_equal(upsample(data, 1), data)

    def test_replicates_values(self):
        data = np.arange(8, dtype=np.float64).reshape(2, 2, 2)
        up = upsample(data, 2)
        assert up.shape == (4, 4, 4)
        for i in range(2):
            for j in range(2):
                for k in range(2):
                    assert np.all(up[2 * i : 2 * i + 2, 2 * j : 2 * j + 2, 2 * k : 2 * k + 2] == data[i, j, k])

    def test_downsample_mean_inverts_upsample(self, rng):
        data = rng.standard_normal((4, 4, 4))
        assert np.allclose(downsample_mean(upsample(data, 2), 2), data)

    def test_downsample_mean_rejects_indivisible(self):
        with pytest.raises(ValueError, match="divisible"):
            downsample_mean(np.zeros((5, 5, 5)), 2)

    def test_downsample_take_corner(self):
        data = np.arange(64, dtype=np.float64).reshape(4, 4, 4)
        taken = downsample_take(data, 2)
        assert taken[0, 0, 0] == data[0, 0, 0]
        assert taken[1, 1, 1] == data[2, 2, 2]

    def test_coarsen_any_all(self):
        mask = np.zeros((4, 4, 4), dtype=bool)
        mask[0, 0, 0] = True  # one cell in the first 2x2x2 block
        assert coarsen_mask_any(mask, 2)[0, 0, 0]
        assert not coarsen_mask_all(mask, 2)[0, 0, 0]
        mask[:2, :2, :2] = True
        assert coarsen_mask_all(mask, 2)[0, 0, 0]

    def test_upsample_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            upsample(np.zeros((2, 2, 2)), 0)


class TestReconstruct:
    def test_same_structure_accepts_clone(self):
        ds = two_level_dataset()
        check_same_structure(ds, ds.with_levels(ds.levels))

    def test_same_structure_rejects_mask_change(self):
        ds = two_level_dataset()
        flipped = ds.levels[0].mask.copy()
        idx = tuple(np.argwhere(flipped)[0])
        flipped[idx] = False
        levels = [AMRLevel(data=ds.levels[0].data, mask=flipped, level=0), ds.levels[1]]
        with pytest.raises(ValueError, match="masks differ"):
            check_same_structure(ds, ds.with_levels(levels))

    def test_same_structure_rejects_level_count(self):
        ds = two_level_dataset()
        single = ds.with_levels([ds.levels[0]])
        # Bypass dataset validation by comparing directly.
        with pytest.raises(ValueError, match="level count"):
            check_same_structure(ds, single)

    def test_pointwise_errors_zero_for_identical(self):
        ds = two_level_dataset()
        errors = pointwise_errors(ds, ds.with_levels(ds.levels))
        assert errors.shape == (ds.total_points(),)
        assert np.all(errors == 0)

    def test_max_level_errors_localized(self):
        ds = two_level_dataset()
        perturbed_data = ds.levels[0].data.copy()
        idx = tuple(np.argwhere(ds.levels[0].mask)[0])
        perturbed_data[idx] += 0.5
        levels = [
            AMRLevel(data=perturbed_data, mask=ds.levels[0].mask, level=0),
            ds.levels[1],
        ]
        errs = max_level_errors(ds, ds.with_levels(levels))
        assert errs[0] == pytest.approx(0.5, rel=1e-5)
        assert errs[1] == 0.0

    def test_uniform_pair_shapes(self):
        ds = two_level_dataset()
        a, b = uniform_pair(ds, ds.with_levels(ds.levels))
        assert a.shape == b.shape == (ds.finest.n,) * 3


class TestIO:
    def test_roundtrip(self, tmp_path):
        ds = two_level_dataset(n=8)
        path = tmp_path / "toy.npz"
        save_dataset(ds, path)
        loaded = load_dataset(path)
        assert loaded.name == ds.name
        assert loaded.field == ds.field
        assert loaded.n_levels == ds.n_levels
        for a, b in zip(ds.levels, loaded.levels):
            assert np.array_equal(a.data, b.data)
            assert np.array_equal(a.mask, b.mask)
        loaded.validate()

    def test_meta_preserved(self, tmp_path):
        ds = two_level_dataset()
        ds.meta["custom"] = [1, 2, 3]
        path = tmp_path / "meta.npz"
        save_dataset(ds, path)
        assert load_dataset(path).meta["custom"] == [1, 2, 3]

    def test_rejects_future_version(self, tmp_path, monkeypatch):
        import repro.amr.io as amr_io

        ds = two_level_dataset()
        path = tmp_path / "v.npz"
        monkeypatch.setattr(amr_io, "_FORMAT_VERSION", 999)
        save_dataset(ds, path)
        monkeypatch.setattr(amr_io, "_FORMAT_VERSION", 1)
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)
