"""Sharded (v3) archive and streaming-writer contracts.

The write-path counterpart of ``tests/test_container_v2.py``:

* property-based round-trip — a random batch written through
  :class:`ShardedArchiveWriter` (head shard + N payload shards) reads
  back entry-identical via :class:`LazyBatchArchive`, in any access
  order, for any shard-roll size;
* the sharded form is bit-identical to the monolithic archive (same part
  names, same part bytes, same decompressed values);
* error contracts — a missing payload shard, a truncated shard, and a
  checksum mismatch all fail loudly with the shard name, the entry key,
  and the archive in the message;
* the streaming writer's peak memory is bounded by the largest single
  part (asserted with ``tracemalloc``), not the dataset;
* the mmap-backed source serves lock-free concurrent reads identical to
  the file-backed source.
"""

from __future__ import annotations

import tempfile
import tracemalloc
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.container import (
    CompressedDataset,
    ContainerIOError,
    LazyCompressedDataset,
    StreamingContainerWriter,
    stream_dataset,
)
from repro.engine import (
    BatchArchive,
    CompressionEngine,
    CompressionJob,
    LazyBatchArchive,
    ShardedArchiveWriter,
)
from tests.helpers import two_level_dataset


def make_entry(key: str, parts: dict[str, bytes]) -> CompressedDataset:
    comp = CompressedDataset(
        method="tac",
        dataset_name=key,
        meta={"origin": key},
        original_bytes=sum(len(p) for p in parts.values()) * 4,
        n_values=max(1, len(parts)),
    )
    comp.parts.update(parts)
    return comp


part_names = st.lists(
    st.text(alphabet="abcdefgh/_0123456789", min_size=1, max_size=12),
    min_size=1,
    max_size=6,
    unique=True,
)
payloads = st.binary(min_size=0, max_size=80)


@st.composite
def batches(draw):
    """A handful of entries with random part names/payloads."""
    keys = draw(
        st.lists(
            st.text(alphabet="abcdefgh/_0123456789", min_size=1, max_size=16),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    entries = {}
    for key in keys:
        names = draw(part_names)
        entries[key] = {name: draw(payloads) for name in names}
    return entries


class TestShardedRoundtripProperty:
    @settings(max_examples=30, deadline=None)
    @given(entries=batches(), shard_size=st.integers(1, 400), data=st.data())
    def test_roundtrip_any_shard_size_any_order(self, entries, shard_size, data):
        archive = BatchArchive(meta={"suite": "property"})
        for key, parts in entries.items():
            archive.add(key, make_entry(key, parts))
        with tempfile.TemporaryDirectory() as tmp:
            head = Path(tmp) / "prop.rpbt"
            report = archive.save_sharded(head, shard_size=shard_size)
            assert report.n_entries == len(entries)
            assert len(report.shard_paths) >= 1
            order = data.draw(st.permutations(sorted(entries)))
            with LazyBatchArchive.open(head, verify_shards=True) as lazy:
                assert lazy.version == 3
                assert sorted(lazy.keys()) == sorted(entries)
                for key in order:
                    entry = lazy.entry(key)
                    assert {n: entry.parts[n] for n in entry.parts} == entries[key]
                    assert entry.meta == {"origin": key}

    @settings(max_examples=15, deadline=None)
    @given(entries=batches(), shard_size=st.integers(1, 200))
    def test_sharded_matches_monolithic(self, entries, shard_size):
        archive = BatchArchive(meta={"suite": "property"})
        for key, parts in entries.items():
            archive.add(key, make_entry(key, parts))
        mono = BatchArchive.from_bytes(archive.to_bytes())
        with tempfile.TemporaryDirectory() as tmp:
            head = Path(tmp) / "prop.rpbt"
            archive.save_sharded(head, shard_size=shard_size)
            back = BatchArchive.load(head)
        assert back.keys() == mono.keys()
        for key in mono.keys():
            assert back.get(key).parts == mono.get(key).parts
            assert back.get(key).meta == mono.get(key).meta


@pytest.fixture(scope="module")
def compressed_batch() -> BatchArchive:
    """Two real codec outputs — the shard contents exercised below."""
    ds = two_level_dataset(n=16, fine_fraction=0.3, seed=7)
    jobs = [
        CompressionJob(ds, codec=c, error_bound=1e-3, mode="abs", label=f"toy/{c}")
        for c in ("tac", "1d")
    ]
    return CompressionEngine().run_to_archive(jobs, suite="shards")


@pytest.fixture
def sharded(tmp_path, compressed_batch):
    """One head + one-entry-per-shard layout on disk."""
    head = tmp_path / "batch.rpbt"
    report = compressed_batch.save_sharded(head, shard_size=1)
    assert len(report.shard_paths) == len(compressed_batch)
    return head, report


class TestShardErrorContracts:
    def test_missing_shard_names_itself(self, sharded):
        head, report = sharded
        with LazyBatchArchive.open(head) as lazy:
            victim_name = lazy.entry_shards()["toy/tac"]
        (head.parent / victim_name).unlink()
        with LazyBatchArchive.open(head) as lazy:
            with pytest.raises(ContainerIOError) as excinfo:
                lazy.entry("toy/tac")
        message = str(excinfo.value)
        assert victim_name in message
        assert "toy/tac" in message
        assert head.name in message

    def test_checksum_mismatch_detected(self, sharded):
        head, report = sharded
        victim = report.shard_paths[0]
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with LazyBatchArchive.open(head, verify_shards=True) as lazy:
            key = next(
                k for k, s in lazy.entry_shards().items() if s == victim.name
            )
            with pytest.raises(ContainerIOError, match="checksum"):
                lazy.entry(key)

    def test_truncated_shard_detected(self, sharded):
        head, report = sharded
        victim = report.shard_paths[0]
        victim.write_bytes(victim.read_bytes()[:-20])
        with LazyBatchArchive.open(head, verify_shards=True) as lazy:
            key = next(
                k for k, s in lazy.entry_shards().items() if s == victim.name
            )
            with pytest.raises(ContainerIOError, match="short"):
                lazy.entry(key)

    def test_unverified_open_defers_shard_reads(self, sharded):
        """Without verify_shards, opening the head touches no shard at all
        (manifest-only inspection of a batch whose shards are elsewhere)."""
        head, report = sharded
        for path in report.shard_paths:
            path.unlink()
        with LazyBatchArchive.open(head) as lazy:
            assert len(lazy.manifest()) == 2
            assert lazy.entry_sizes()
            assert len(lazy.shards()) == 2

    def test_head_from_bytes_needs_shard_opener(self, sharded):
        head, _report = sharded
        blob = head.read_bytes()
        with pytest.raises(ValueError, match="shard_opener"):
            LazyBatchArchive.open(blob)
        with pytest.raises(ValueError, match="sharded"):
            BatchArchive.from_bytes(blob)

    def test_custom_shard_opener_resolves_relocated_shards(self, sharded):
        """The object-storage seam: shards can live anywhere the opener
        can reach — here, a different directory, opened from raw bytes."""
        from repro.core.container import make_source

        head, report = sharded
        blob = head.read_bytes()
        with tempfile.TemporaryDirectory() as elsewhere:
            for path in report.shard_paths:
                (Path(elsewhere) / path.name).write_bytes(path.read_bytes())
                path.unlink()
            opener = lambda name: make_source(Path(elsewhere) / name)  # noqa: E731
            with LazyBatchArchive.open(blob, shard_opener=opener) as lazy:
                restored = lazy.decompress("toy/tac")
                assert restored.n_levels == 2

    def test_non_local_shard_names_rejected(self, tmp_path, sharded):
        head, _report = sharded
        import json
        import struct

        blob = head.read_bytes()
        version, head_len = struct.unpack_from("<BQ", blob, 4)
        record = json.loads(blob[13 : 13 + head_len].decode("utf-8"))
        record["shards"][0]["name"] = "../evil.rpsh"
        new_head = json.dumps(record, sort_keys=True).encode("utf-8")
        evil = tmp_path / "evil_head.rpbt"
        evil.write_bytes(blob[:5] + struct.pack("<Q", len(new_head)) + new_head)
        first_key = record["keys"][0]
        target = next(
            k for k in record["keys"] if record["index"][k][0] == 0
        ) or first_key
        with LazyBatchArchive.open(evil) as lazy:
            with pytest.raises(ContainerIOError, match="non-local"):
                lazy.entry(target)


class TestShardedBitIdentity:
    def test_parts_and_values_match_monolithic(self, sharded, compressed_batch):
        head, _report = sharded
        with LazyBatchArchive.open(head, verify_shards=True) as lazy:
            for key in compressed_batch.keys():
                entry = lazy.entry(key)
                reference = compressed_batch.get(key)
                assert list(entry.parts) == list(reference.parts)
                for name in reference.parts:
                    assert entry.parts[name] == reference.parts[name]
                a = lazy.decompress(key)
                b = compressed_batch.decompress(key)
                for la, lb in zip(a.levels, b.levels):
                    assert np.array_equal(la.data, lb.data)
                    assert np.array_equal(la.mask, lb.mask)

    def test_deterministic_regeneration(self, tmp_path, compressed_batch):
        """Equal archives produce byte-equal shard sets (golden-fixture
        prerequisite)."""
        head_a = tmp_path / "a" / "batch.rpbt"
        head_b = tmp_path / "b" / "batch.rpbt"
        head_a.parent.mkdir()
        head_b.parent.mkdir()
        ra = compressed_batch.save_sharded(head_a, shard_size=4096)
        rb = compressed_batch.save_sharded(head_b, shard_size=4096)
        assert head_a.read_bytes() == head_b.read_bytes()
        assert [p.name for p in ra.shard_paths] == [p.name for p in rb.shard_paths]
        for pa, pb in zip(ra.shard_paths, rb.shard_paths):
            assert pa.read_bytes() == pb.read_bytes()

    def test_partial_decode_reads_one_shard(self, sharded):
        head, _report = sharded
        with LazyBatchArchive.open(head) as lazy:
            level = lazy.decompress_level("toy/tac", 1)
            assert level.n_points() > 0


class TestStreamingWriterMemory:
    def test_peak_memory_bounded_by_largest_part(self, tmp_path):
        """The tentpole contract: streaming a multi-part dataset allocates
        at most ~2x the largest single part, never the sum of parts."""
        rng = np.random.default_rng(11)
        n_parts, part_size = 8, 4 << 20
        path = tmp_path / "big.rpam"

        def parts():
            for i in range(n_parts):
                yield f"L{i}/payload", rng.bytes(part_size)

        tracemalloc.start()
        writer = StreamingContainerWriter(path, "tac", "big", meta={"levels": []})
        writer.add_parts(parts())
        total = writer.close()
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert total > n_parts * part_size
        assert writer.largest_part == part_size
        # One part in flight (generator) + one being written + slack; an
        # eager to_bytes() would have needed > n_parts * part_size here.
        assert peak < 2 * part_size + (1 << 20), (
            f"peak {peak / 2**20:.1f} MiB vs largest part {part_size / 2**20:.1f} MiB"
        )
        lazy = LazyCompressedDataset.open(path)
        assert len(lazy.parts) == n_parts
        lazy.close()

    @pytest.mark.parametrize("version", [3, 4])
    def test_streamed_bytes_equal_eager(self, tmp_path, compressed_batch, version):
        comp = compressed_batch.get("toy/tac")
        eager = CompressedDataset.from_bytes(comp.to_bytes())
        eager.container_version = version
        path = tmp_path / "entry.rpam"
        total = stream_dataset(comp, path, container_version=version)
        assert path.read_bytes() == eager.to_bytes()
        assert total == path.stat().st_size

    def test_streaming_default_is_v4(self, tmp_path, compressed_batch):
        comp = compressed_batch.get("toy/tac")
        path = tmp_path / "entry.rpam"
        stream_dataset(comp, path)
        with LazyCompressedDataset.open(path) as lazy:
            assert lazy.container_version == 4
            assert lazy.parts.verifies_integrity

    def test_streaming_writer_rejects_non_tail_version(self, tmp_path):
        with pytest.raises(ValueError, match="tail-indexed"):
            StreamingContainerWriter(tmp_path / "x.rpam", "tac", "x", container_version=2)

    def test_writer_rejects_duplicates_and_use_after_close(self, tmp_path):
        writer = StreamingContainerWriter(tmp_path / "x.rpam", "tac", "x")
        writer.add_part("a", b"one")
        with pytest.raises(ValueError, match="duplicate"):
            writer.add_part("a", b"two")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.add_part("b", b"three")

    def test_aborted_writer_leaves_unreadable_partial(self, tmp_path):
        path = tmp_path / "partial.rpam"
        with pytest.raises(RuntimeError, match="boom"):
            with StreamingContainerWriter(path, "tac", "x") as writer:
                writer.add_part("a", b"payload")
                raise RuntimeError("boom")
        # Header was never patched: the zero index slot refuses to parse
        # as a complete blob instead of serving half a dataset.
        with pytest.raises(ValueError):
            CompressedDataset.from_bytes(path.read_bytes())


class TestMmapSource:
    def test_mmap_reads_match_file_reads(self, sharded, compressed_batch):
        head, _report = sharded
        with LazyBatchArchive.open(head, mmap=True) as lazy:
            for key in compressed_batch.keys():
                entry = lazy.entry(key)
                for name, payload in compressed_batch.get(key).parts.items():
                    assert entry.parts[name] == payload

    def test_concurrent_lockfree_reads(self, tmp_path, compressed_batch):
        comp = compressed_batch.get("toy/tac")
        path = tmp_path / "entry.rpam"
        path.write_bytes(comp.to_bytes())
        with LazyCompressedDataset.open(path, mmap=True) as lazy:
            names = list(comp.parts) * 8
            with ThreadPoolExecutor(max_workers=8) as pool:
                fetched = list(pool.map(lambda n: lazy.parts[n], names))
            for name, payload in zip(names, fetched):
                assert payload == comp.parts[name]

    def test_concurrent_entry_calls_open_each_shard_once(self, sharded):
        """Racing entry() calls must not double-open (and leak) a shard."""
        from repro.core.container import make_source

        head, report = sharded
        opens: list[str] = []

        def opener(name):
            opens.append(name)
            return make_source(head.parent / name)

        with LazyBatchArchive.open(head.read_bytes(), shard_opener=opener) as lazy:
            keys = lazy.keys() * 8
            with ThreadPoolExecutor(max_workers=8) as pool:
                entries = list(pool.map(lazy.entry, keys))
            assert all(entry.n_values > 0 for entry in entries)
        assert sorted(opens) == sorted(set(opens)), f"shard double-opened: {opens}"
        assert len(opens) == len(report.shard_paths)

    def test_mmap_rejects_file_objects(self, tmp_path):
        from repro.core.container import make_source

        path = tmp_path / "x.bin"
        path.write_bytes(b"RPAMxxxx")
        with open(path, "rb") as fh:
            with pytest.raises(TypeError, match="path source"):
                make_source(fh, mmap=True)


class TestEngineStreamedBatch:
    def test_run_to_shards_matches_run_to_archive(self, tmp_path):
        datasets = [two_level_dataset(n=16, fine_fraction=0.25, seed=s) for s in range(3)]
        jobs = [
            CompressionJob(ds, codec="tac", error_bound=1e-3, label=f"f{i}/tac")
            for i, ds in enumerate(datasets)
        ]
        reference = CompressionEngine(max_workers=1).run_to_archive(jobs, batch="ref")
        head = tmp_path / "streamed.rpbt"
        sharded = CompressionEngine(max_workers=3).run_to_shards(
            jobs, head, shard_size=1, batch="ref"
        )
        assert sharded.report.n_entries == len(jobs)
        assert len(sharded.shard_paths) == len(jobs)
        assert all(r.ok and r.compressed is None for r in sharded)
        with LazyBatchArchive.open(head, verify_shards=True) as lazy:
            assert lazy.meta == {"batch": "ref"}
            for key in reference.keys():
                entry = lazy.entry(key)
                for name, payload in reference.get(key).parts.items():
                    assert entry.parts[name] == payload

    def test_failed_job_aborts_and_cleans_up(self, tmp_path):
        good = two_level_dataset(n=16, fine_fraction=0.25, seed=0)
        jobs = [
            CompressionJob(good, codec="tac", error_bound=1e-3, label="good/tac"),
            CompressionJob(str(tmp_path / "missing.npz"), codec="tac", label="bad/tac"),
        ]
        head = tmp_path / "doomed.rpbt"
        with pytest.raises(RuntimeError, match="bad/tac"):
            CompressionEngine(max_workers=2).run_to_shards(jobs, head, shard_size=1)
        leftovers = sorted(p.name for p in tmp_path.iterdir() if p.suffix != ".npz")
        assert leftovers == [], f"half-written archive left behind: {leftovers}"

    def test_failed_rerun_preserves_existing_archive(self, tmp_path):
        """A re-run that fails before writing anything must not delete
        the previously written archive."""
        ds = two_level_dataset(n=16, fine_fraction=0.25, seed=2)
        head = tmp_path / "arch.rpbt"
        CompressionEngine().run_to_shards(
            [CompressionJob(ds, codec="1d", error_bound=1e-3, label="a/1d")], head
        )
        before = head.read_bytes()
        bad = [CompressionJob(str(tmp_path / "missing.npz"), codec="1d", label="bad/1d")]
        with pytest.raises(RuntimeError, match="bad/1d"):
            CompressionEngine().run_to_shards(bad, head)
        assert head.read_bytes() == before
        with LazyBatchArchive.open(head) as lazy:
            assert lazy.decompress("a/1d").n_levels == 2

    def test_keep_payloads_retains_results(self, tmp_path):
        ds = two_level_dataset(n=16, fine_fraction=0.25, seed=1)
        jobs = [CompressionJob(ds, codec="1d", error_bound=1e-3, label="f/1d")]
        sharded = CompressionEngine().run_to_shards(
            jobs, tmp_path / "kept.rpbt", keep_payloads=True
        )
        assert sharded.results[0].compressed is not None
        rows = sharded.manifest()
        assert rows[0]["key"] == "f/1d"
        assert sharded.ratio() > 1.0


class TestStreamingWriterInitFailure:
    def test_head_write_failure_closes_owned_handle(self, tmp_path, monkeypatch):
        """RL002: a failed head write in __init__ must close the file the
        writer itself opened — the caller never gets an object to close."""
        import builtins

        import repro.core.container as container_mod

        opened = []
        real_open = builtins.open

        def spy_open(*args, **kwargs):
            fh = real_open(*args, **kwargs)
            opened.append(fh)
            return fh

        monkeypatch.setattr(builtins, "open", spy_open)

        def boom(*args, **kwargs):
            raise RuntimeError("head record failed")

        monkeypatch.setattr(container_mod, "_head_record", boom)
        with pytest.raises(RuntimeError, match="head record failed"):
            container_mod.StreamingContainerWriter(tmp_path / "x.rpam", "tac", "d")
        assert opened, "writer never opened its sink"
        assert all(fh.closed for fh in opened), "sink handle leaked on init failure"

    def test_borrowed_handle_stays_open_on_init_failure(self, tmp_path, monkeypatch):
        import repro.core.container as container_mod

        def boom(*args, **kwargs):
            raise RuntimeError("head record failed")

        monkeypatch.setattr(container_mod, "_head_record", boom)
        with open(tmp_path / "x.rpam", "wb") as fh:
            with pytest.raises(RuntimeError, match="head record failed"):
                container_mod.StreamingContainerWriter(fh, "tac", "d")
            assert not fh.closed, "writer closed a handle it does not own"
