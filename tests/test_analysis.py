"""Unit tests for the analysis substrate: metrics, P(k), halo finder, RD."""

import numpy as np
import pytest

from repro.analysis.halo_finder import (
    compare_biggest_halo,
    find_halos,
    match_halo,
)
from repro.analysis.metrics import (
    bit_rate,
    compression_ratio,
    max_abs_error,
    mse,
    nrmse,
    psnr,
    throughput_mb_s,
    value_range,
)
from repro.analysis.power_spectrum import (
    density_contrast,
    max_error_below_k,
    passes_criterion,
    power_spectrum,
    relative_error,
)
from repro.analysis.rate_distortion import (
    RDPoint,
    crossover_bitrate,
    psnr_at_bitrate,
    rd_sweep,
)
from repro.core.tac import TACCompressor


class TestMetrics:
    def test_psnr_known_value(self):
        original = np.array([0.0, 1.0])  # range 1
        recon = original + 0.01
        # PSNR = -10 log10(1e-4) = 40 dB.
        assert psnr(original, recon) == pytest.approx(40.0, abs=1e-6)

    def test_psnr_exact_is_inf(self):
        data = np.arange(10.0)
        assert psnr(data, data) == np.inf

    def test_psnr_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_nrmse_and_max_error(self):
        a = np.array([0.0, 2.0])
        b = np.array([0.0, 1.0])
        assert max_abs_error(a, b) == 1.0
        assert nrmse(a, b) == pytest.approx(np.sqrt(0.5) / 2)

    def test_value_range(self):
        assert value_range(np.array([-1.0, 3.0])) == 4.0
        assert value_range(np.zeros(0)) == 0.0

    def test_ratio_and_bitrate_product(self):
        # CR * bit-rate == 32 for float32 data.
        cr = compression_ratio(4000, 100)
        br = bit_rate(100, 1000)
        assert cr * br == pytest.approx(32.0)

    def test_throughput(self):
        assert throughput_mb_s(10_000_000, 2.0) == pytest.approx(5.0)
        assert throughput_mb_s(1, 0.0) == np.inf


class TestPowerSpectrum:
    def test_plane_wave_peaks_at_its_wavenumber(self):
        n, box = 32, 64.0
        x = np.arange(n) * (box / n)
        mode = 4  # k = 2*pi*4/box
        rho = 10.0 + np.cos(2 * np.pi * mode * x / box)[:, None, None] * np.ones((n, n, n))
        spec = power_spectrum(rho, box_size=box)
        k_expect = 2 * np.pi * mode / box
        k_peak = spec.k[np.argmax(spec.p)]
        assert k_peak == pytest.approx(k_expect, rel=0.15)

    def test_identical_fields_zero_error(self, z10_small):
        uniform = z10_small.to_uniform()
        spec = power_spectrum(uniform, box_size=64.0)
        assert max_error_below_k(spec, spec) == 0.0
        assert passes_criterion(spec, spec)

    def test_perturbation_raises_error(self, z10_small, rng):
        uniform = z10_small.to_uniform().astype(np.float64)
        noisy = uniform * (1 + 0.05 * rng.standard_normal(uniform.shape))
        a = power_spectrum(uniform, box_size=64.0)
        b = power_spectrum(noisy, box_size=64.0)
        assert max_error_below_k(a, b, max_k=np.inf) > 0.0

    def test_contrast_zero_mean(self, rng):
        rho = rng.lognormal(0, 1, (8, 8, 8))
        delta = density_contrast(rho)
        assert abs(float(delta.mean())) < 1e-12

    def test_contrast_rejects_zero_mean_field(self):
        with pytest.raises(ValueError):
            density_contrast(np.zeros((4, 4, 4)))

    def test_rejects_non_cube(self):
        with pytest.raises(ValueError, match="cube"):
            power_spectrum(np.zeros((4, 4, 8)))

    def test_binning_mismatch_rejected(self):
        a = power_spectrum(np.ones((8, 8, 8)) + np.arange(8)[:, None, None], box_size=64.0)
        b = power_spectrum(np.ones((16, 16, 16)) + np.arange(16)[:, None, None], box_size=64.0)
        with pytest.raises(ValueError, match="binning"):
            relative_error(a, b)


class TestHaloFinder:
    def make_field_with_blobs(self, n=32):
        field = np.ones((n, n, n))
        field[4:8, 4:8, 4:8] = 1000.0     # big halo: 64 cells
        field[20:22, 20:22, 20:22] = 800.0  # small halo: 8 cells
        field[30, 30, 30] = 5000.0        # below min_cells: not a halo
        return field

    def test_finds_expected_halos(self):
        field = self.make_field_with_blobs()
        catalog = find_halos(field, threshold_factor=50, min_cells=8)
        assert catalog.n_halos == 2
        assert catalog.biggest.n_cells == 64

    def test_threshold_factor_applies(self):
        field = self.make_field_with_blobs()
        catalog = find_halos(field, threshold_factor=1e9, min_cells=1)
        assert catalog.n_halos == 0

    def test_min_cells_filters_singletons(self):
        field = self.make_field_with_blobs()
        with_singles = find_halos(field, threshold_factor=50, min_cells=1)
        without = find_halos(field, threshold_factor=50, min_cells=8)
        assert with_singles.n_halos == without.n_halos + 1

    def test_positions_at_centers_of_mass(self):
        field = self.make_field_with_blobs()
        catalog = find_halos(field, threshold_factor=50, min_cells=8)
        big = catalog.biggest
        assert big.position == pytest.approx((5.5, 5.5, 5.5), abs=0.01)

    def test_match_halo_nearest(self):
        field = self.make_field_with_blobs()
        catalog = find_halos(field, threshold_factor=50, min_cells=8)
        match = match_halo(catalog.biggest, catalog)
        assert match is catalog.biggest

    def test_compare_identical_fields(self):
        field = self.make_field_with_blobs()
        cmp_res = compare_biggest_halo(field, field, threshold_factor=50, min_cells=8)
        assert cmp_res.rel_mass_diff == 0.0
        assert cmp_res.cell_count_diff == 0
        assert cmp_res.matched

    def test_compare_perturbed_field(self):
        field = self.make_field_with_blobs()
        other = field.copy()
        other[4:8, 4:8, 4:8] *= 1.01  # 1% mass change in the big halo
        cmp_res = compare_biggest_halo(field, other, threshold_factor=50, min_cells=8)
        assert 0 < cmp_res.rel_mass_diff < 0.02

    def test_no_halos_raises(self):
        with pytest.raises(ValueError, match="no halos"):
            compare_biggest_halo(np.ones((8, 8, 8)), np.ones((8, 8, 8)))

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            find_halos(np.ones((4, 4, 4)), threshold_factor=0)
        with pytest.raises(ValueError):
            find_halos(np.ones((4, 4, 4)), min_cells=0)
        with pytest.raises(ValueError):
            find_halos(np.ones((4, 4)))


class TestRateDistortion:
    def test_sweep_monotone(self, z10_small):
        points = rd_sweep(TACCompressor(), z10_small, (1e-2, 1e-3, 1e-4))
        rates = [p.bit_rate for p in points]
        psnrs = [p.psnr for p in points]
        assert rates == sorted(rates)  # tighter bound -> more bits
        assert psnrs == sorted(psnrs)  # tighter bound -> higher quality

    def test_point_fields(self, z10_small):
        points = rd_sweep(TACCompressor(), z10_small, (1e-3,))
        p = points[0]
        assert p.method == "tac"
        assert p.dataset == z10_small.name
        assert p.ratio * p.bit_rate == pytest.approx(32.0, rel=1e-6)
        assert p.compress_seconds > 0

    def test_psnr_interpolation(self):
        curve = [
            RDPoint("m", "d", 1e-2, 1.0, 32.0, 50.0, 0, 0),
            RDPoint("m", "d", 1e-3, 3.0, 32.0 / 3, 70.0, 0, 0),
        ]
        assert psnr_at_bitrate(curve, 2.0) == pytest.approx(60.0)
        assert psnr_at_bitrate(curve, 0.5) == 50.0  # clamped to endpoint

    def test_psnr_interpolation_empty_curve(self):
        with pytest.raises(ValueError):
            psnr_at_bitrate([], 1.0)

    def test_crossover_detection(self):
        a = [
            RDPoint("a", "d", 0, 1.0, 0, 40.0, 0, 0),
            RDPoint("a", "d", 0, 3.0, 0, 80.0, 0, 0),
        ]
        b = [
            RDPoint("b", "d", 0, 1.0, 0, 50.0, 0, 0),
            RDPoint("b", "d", 0, 3.0, 0, 60.0, 0, 0),
        ]
        rate = crossover_bitrate(a, b)
        assert rate is not None and 1.0 < rate < 3.0
        # b never overtakes a after the crossover... reversed query:
        assert crossover_bitrate(b, a) == pytest.approx(1.0)

    def test_crossover_none_when_disjoint(self):
        a = [RDPoint("a", "d", 0, 1.0, 0, 40.0, 0, 0)]
        b = [RDPoint("b", "d", 0, 5.0, 0, 50.0, 0, 0)]
        assert crossover_bitrate(a, b) is None
