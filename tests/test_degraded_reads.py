"""Graceful degradation: deadlines, fill-value reads, circuit breaking.

Every scenario drives the real serving stack (``ArchiveReader`` over a
sharded v4 archive) through the deterministic fault harness
(:mod:`repro.faults`), proving the acceptance behaviours end to end:
a stalled shard raises :class:`DeadlineExceeded` in bounded time, a
corrupt brick degrades to fill values with an exact error report, a
fault-free re-read is bit-identical, fill values never enter the
decoded-brick cache, and a repeatedly-failing shard trips its breaker.
"""

import time

import numpy as np
import pytest

from repro.core.container import ContainerIOError, PartIntegrityError
from repro.core.tac import TACCompressor
from repro.engine import default_shard_opener
from repro.engine.archive import BatchArchive, LazyBatchArchive
from repro.faults import FaultPlan, FaultRule, archive_part_spans, faulty_opener
from repro.serve import (
    ArchiveReader,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    PrefetchPipeline,
    RetryPolicy,
    breaking_opener,
    retrying_opener,
)
from tests.helpers import two_level_dataset

KEY = "toy/tac"
#: Level 1 of the toy dataset is brick-chunked (8 bricks of 4³); level 0
#: is group-coded, whose units are box-less and therefore undegradable.
BRICK_LEVEL = 1


@pytest.fixture(scope="module")
def shard_dir(tmp_path_factory):
    tac = TACCompressor(brick_size=4)
    comp = tac.compress(two_level_dataset(n=16, seed=5), 1e-3, mode="abs")
    archive = BatchArchive()
    archive.add(KEY, comp)
    root = tmp_path_factory.mktemp("degraded")
    archive.save_sharded(root / "arch.rpbt", shard_size=4096)
    return root


@pytest.fixture(scope="module")
def head(shard_dir):
    return shard_dir / "arch.rpbt"


@pytest.fixture(scope="module")
def spans(head):
    return archive_part_spans(head)


@pytest.fixture(scope="module")
def baseline(head):
    """Fault-free whole-level decode to compare degraded reads against."""
    with ArchiveReader(head, cache_bytes=0) as reader:
        lvl, _stats = reader.read_level(KEY, BRICK_LEVEL)
    return lvl.data.copy()


def chaos_reader(head, spans, rules, **kwargs):
    plan = FaultPlan(rules, seed=0)
    opener = faulty_opener(default_shard_opener(head.parent), plan, spans)
    kwargs.setdefault("retry", RetryPolicy(attempts=1))
    kwargs.setdefault("cache_bytes", 0)
    return ArchiveReader(head, shard_opener=opener, **kwargs), plan


# ---------------------------------------------------------------------------
# the Deadline primitive
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_non_positive_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            Deadline(0.0)
        with pytest.raises(ValueError, match="deadline"):
            Deadline(-1.0)

    def test_remaining_tracks_injected_clock(self):
        clock = {"t": 100.0}
        deadline = Deadline(2.0, clock=lambda: clock["t"])
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired()
        clock["t"] = 101.5
        assert deadline.remaining() == pytest.approx(0.5)
        clock["t"] = 102.0
        assert deadline.expired()
        clock["t"] = 103.0
        assert deadline.remaining() == pytest.approx(-1.0)

    def test_coerce(self):
        assert Deadline.coerce(None) is None
        deadline = Deadline(1.0)
        assert Deadline.coerce(deadline) is deadline
        assert isinstance(Deadline.coerce(0.25), Deadline)


# ---------------------------------------------------------------------------
# deadline enforcement through the reader
# ---------------------------------------------------------------------------


class TestDeadlineEnforcement:
    def test_stalled_window_raises_in_bounded_time(self, head, spans):
        reader, _plan = chaos_reader(
            head, spans, [FaultRule("latency", match="*/L1/b0", delay=2.0, times=1)]
        )
        with reader:
            t0 = time.perf_counter()
            with pytest.raises(DeadlineExceeded, match="deadline"):
                reader.read_level(KEY, BRICK_LEVEL, deadline=0.15)
            elapsed = time.perf_counter() - t0
        assert elapsed < 1.5  # bounded by the deadline, not the 2s stall

    def test_default_deadline_applies_to_every_request(self, head, spans):
        reader, _plan = chaos_reader(
            head,
            spans,
            [FaultRule("latency", match="*/L1/b0", delay=2.0, times=1)],
            default_deadline=0.15,
        )
        with reader:
            with pytest.raises(DeadlineExceeded):
                reader.read_level(KEY, BRICK_LEVEL)

    def test_no_deadline_waits_out_the_stall(self, head, spans, baseline):
        reader, _plan = chaos_reader(
            head, spans, [FaultRule("latency", match="*/L1/b0", delay=0.3, times=1)]
        )
        with reader:
            lvl, stats = reader.read_level(KEY, BRICK_LEVEL)
        assert stats.errors == []
        np.testing.assert_array_equal(lvl.data, baseline)


# ---------------------------------------------------------------------------
# degraded (fill-on-failure) reads
# ---------------------------------------------------------------------------


class TestDegradedReads:
    def test_corrupt_brick_fills_exact_box_and_reports_it(
        self, head, spans, baseline
    ):
        reader, plan = chaos_reader(
            head,
            spans,
            [FaultRule("bitflip", match="*/L1/b0", offset=2, times=1)],
            fill_value=-1.0,
        )
        with reader:
            lvl, stats = reader.read_level(KEY, BRICK_LEVEL, degraded=True)
            assert stats.degraded
            assert len(stats.errors) == 1
            row = stats.errors[0]
            assert row["unit"] == "L1/b0"
            assert row["kind"] == "integrity"
            box = tuple(tuple(b) for b in row["box"])
            slices = tuple(slice(lo, hi) for lo, hi in box)
            assert np.all(lvl.data[slices] == -1.0)
            outside = lvl.data.copy()
            expected_outside = baseline.copy()
            outside[slices] = 0
            expected_outside[slices] = 0
            np.testing.assert_array_equal(outside, expected_outside)

            # The injected fault was times=1: a re-read fetches clean bytes
            # and must be bit-identical to the fault-free baseline.
            lvl2, stats2 = reader.read_level(KEY, BRICK_LEVEL, degraded=True)
            assert stats2.errors == []
            np.testing.assert_array_equal(lvl2.data, baseline)
        assert plan.n_fired == 1

    def test_degraded_region_read_clips_report_to_request(self, head, spans):
        reader, _plan = chaos_reader(
            head,
            spans,
            [FaultRule("bitflip", match="*/L1/b0", times=1)],
            fill_value=-1.0,
            degraded=True,
        )
        with reader:
            region = (slice(0, 3), slice(0, 3), slice(0, 3))
            data, stats = reader.read_region(KEY, BRICK_LEVEL, region)
            assert stats.degraded and len(stats.errors) == 1
            assert stats.errors[0]["box"] == [[0, 3], [0, 3], [0, 3]]
            assert np.all(data == -1.0)

    def test_unrequested_corruption_is_not_reported(self, head, spans, baseline):
        # The flipped brick lives at the level's origin; an ROI in the far
        # corner never touches it, so the read is clean and exact.
        reader, plan = chaos_reader(
            head,
            spans,
            [FaultRule("bitflip", match="*/L1/b0", times=1)],
            degraded=True,
        )
        with reader:
            region = (slice(4, 8), slice(4, 8), slice(4, 8))
            data, stats = reader.read_region(KEY, BRICK_LEVEL, region)
            assert stats.errors == []
            np.testing.assert_array_equal(data, baseline[4:8, 4:8, 4:8])
        assert plan.n_fired == 0

    def test_stalled_brick_degrades_to_timeout_fill_in_bounded_time(
        self, head, spans
    ):
        reader, _plan = chaos_reader(
            head,
            spans,
            [FaultRule("latency", match="*/L1/b0", delay=2.0, times=1)],
            fill_value=-1.0,
        )
        with reader:
            t0 = time.perf_counter()
            lvl, stats = reader.read_level(
                KEY, BRICK_LEVEL, deadline=0.15, degraded=True
            )
            elapsed = time.perf_counter() - t0
            assert elapsed < 1.5
            assert stats.degraded and stats.errors
            assert {row["kind"] for row in stats.errors} == {"timeout"}

    def test_boxless_unit_failure_still_raises(self, head, spans):
        # Level 0 is group-coded: its units carry no box, so there is no
        # partial answer — degraded mode must re-raise, not fabricate.
        reader, _plan = chaos_reader(
            head, spans, [FaultRule("bitflip", match="*/L0/g0", times=1)]
        )
        with reader:
            with pytest.raises(PartIntegrityError):
                reader.read_level(KEY, 0, degraded=True)

    def test_clean_degraded_read_is_exact(self, head, spans, baseline):
        reader, _plan = chaos_reader(head, spans, [], degraded=True)
        with reader:
            lvl, stats = reader.read_level(KEY, BRICK_LEVEL)
        assert stats.degraded and stats.errors == []
        np.testing.assert_array_equal(lvl.data, baseline)


# ---------------------------------------------------------------------------
# decoded-brick cache purity under degradation
# ---------------------------------------------------------------------------


class TestCachePurityUnderDegradation:
    def test_fill_valued_bricks_never_enter_the_cache(
        self, head, spans, baseline
    ):
        reader, _plan = chaos_reader(
            head,
            spans,
            [FaultRule("bitflip", match="*/L1/b0", times=1)],
            cache_bytes=64 * 1024 * 1024,
            fill_value=-1.0,
        )
        with reader:
            _lvl, stats = reader.read_level(KEY, BRICK_LEVEL, degraded=True)
            assert [row["unit"] for row in stats.errors] == ["L1/b0"]
            # The failed brick must be absent; its healthy siblings cached.
            assert reader.cache.get((KEY, BRICK_LEVEL, "L1/b0")) is None
            assert reader.cache.get((KEY, BRICK_LEVEL, "L1/b1")) is not None

            # Re-read with the fault budget exhausted: the brick decodes
            # cleanly now, and the result is bit-identical — proof no fill
            # values were served from cache.
            lvl2, stats2 = reader.read_level(KEY, BRICK_LEVEL, degraded=True)
            assert stats2.errors == []
            np.testing.assert_array_equal(lvl2.data, baseline)
            assert reader.cache.get((KEY, BRICK_LEVEL, "L1/b0")) is not None


# ---------------------------------------------------------------------------
# pipeline error propagation (no deadlock, no poisoning)
# ---------------------------------------------------------------------------


class TestPipelineErrorPropagation:
    def test_failed_fetch_fails_request_with_original_exception(
        self, head, spans
    ):
        plan = FaultPlan([FaultRule("oserror", match="*/L1/b*", times=1)])
        opener = faulty_opener(default_shard_opener(head.parent), plan, spans)
        tac = TACCompressor(brick_size=4)
        with LazyBatchArchive.open(head, shard_opener=opener) as lazy:
            entry = lazy.entry(KEY)
            units = tac.build_decode_plan(entry, levels=[BRICK_LEVEL]).units
            with PrefetchPipeline(io_workers=2, decode_workers=2) as pipeline:
                with pytest.raises(ContainerIOError, match="injected transient fault"):
                    pipeline.execute(entry.parts, units)
                # Same pipeline, same store, fault budget spent: the next
                # request must run clean — no poisoned pools, no stale
                # staging, no deadlock.
                results, stats = pipeline.execute(entry.parts, units)
        assert {unit.key for unit in units} <= set(results)
        assert stats.unit_errors == {}

    def test_partial_mode_records_error_instead_of_raising(self, head, spans):
        plan = FaultPlan([FaultRule("oserror", match="*/L1/b0", times=1)])
        opener = faulty_opener(default_shard_opener(head.parent), plan, spans)
        tac = TACCompressor(brick_size=4)
        with LazyBatchArchive.open(head, shard_opener=opener) as lazy:
            entry = lazy.entry(KEY)
            units = tac.build_decode_plan(entry, levels=[BRICK_LEVEL]).units
            with PrefetchPipeline(io_workers=2, decode_workers=2) as pipeline:
                results, stats = pipeline.execute(
                    entry.parts, units, allow_partial=True
                )
        assert stats.unit_errors  # the window's casualties are recorded
        for key, exc in stats.unit_errors.items():
            assert key not in results
            assert "injected transient fault" in str(exc)


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, threshold=2, cooldown=10.0):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=threshold, cooldown=cooldown, clock=lambda: clock["t"]
        )
        return breaker, clock

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=0.0)

    def test_opens_after_consecutive_failures(self):
        breaker, _clock = self.make(threshold=2)
        assert breaker.record_failure("s") is False
        assert not breaker.is_open("s")
        assert breaker.record_failure("s") is True
        assert breaker.is_open("s")
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.check("s")
        assert excinfo.value.shard == "s"
        assert excinfo.value.retry_in == pytest.approx(10.0)

    def test_success_resets_the_streak(self):
        breaker, _clock = self.make(threshold=2)
        breaker.record_failure("s")
        breaker.record_success("s")
        breaker.record_failure("s")
        assert not breaker.is_open("s")

    def test_shards_are_independent(self):
        breaker, _clock = self.make(threshold=1)
        breaker.record_failure("bad")
        assert breaker.is_open("bad")
        breaker.check("good")  # unrelated shard unaffected

    def test_half_open_allows_one_trial(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure("s")
        clock["t"] = 11.0
        breaker.check("s")  # the single half-open trial slot
        with pytest.raises(CircuitOpenError):
            breaker.check("s")  # second concurrent caller still blocked
        breaker.record_success("s")
        assert not breaker.is_open("s")
        breaker.check("s")

    def test_failed_trial_reopens_for_a_fresh_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure("s")
        clock["t"] = 11.0
        breaker.check("s")
        breaker.record_failure("s")
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.check("s")
        assert excinfo.value.retry_in == pytest.approx(10.0)

    def test_snapshot_reports_health(self):
        breaker, _clock = self.make(threshold=2)
        breaker.record_failure("s")
        breaker.record_failure("s")
        breaker.record_success("other")
        snap = breaker.snapshot()
        assert snap["s"] == {
            "open": True,
            "consecutive_failures": 2,
            "total_failures": 2,
            "total_successes": 0,
            "n_opens": 1,
        }
        assert snap["other"]["total_successes"] == 1

    def test_breaking_opener_fails_fast_once_open(self):
        breaker, _clock = self.make(threshold=2)
        calls = {"n": 0}

        def opener(name):
            calls["n"] += 1
            raise OSError("down")

        wrapped = breaking_opener(opener, breaker)
        for _ in range(2):
            with pytest.raises(OSError):
                wrapped("s")
        with pytest.raises(CircuitOpenError):
            wrapped("s")
        assert calls["n"] == 2  # the open circuit never touched the opener

    def test_circuit_open_error_is_never_retried(self):
        waits: list[float] = []
        calls = {"n": 0}

        def opener(name):
            calls["n"] += 1
            raise CircuitOpenError("open", shard="s")

        wrapped = retrying_opener(
            opener, policy=RetryPolicy(attempts=4, sleep=waits.append)
        )
        with pytest.raises(CircuitOpenError):
            wrapped("s")
        assert calls["n"] == 1 and waits == []

    def test_reader_trips_breaker_on_persistent_shard_failure(self, head):
        def opener(name):
            raise OSError("shard store is down")

        reader = ArchiveReader(
            head,
            shard_opener=opener,
            retry=RetryPolicy(attempts=1),
            cache_bytes=0,
            breaker_threshold=2,
            breaker_cooldown=60.0,
        )
        with reader:
            for _ in range(3):
                with pytest.raises((ContainerIOError, OSError)):
                    reader.read_level(KEY, BRICK_LEVEL)
            snap = reader.stats()["breaker"]
            assert any(health["open"] for health in snap.values())
            # Once open, the failure surfaces as the breaker's fast-fail.
            with pytest.raises(CircuitOpenError):
                reader.read_level(KEY, BRICK_LEVEL)
